package catchup

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"smartchain/internal/blockchain"
	"smartchain/internal/crypto"
	"smartchain/internal/storage"
)

// fakeWorld is a simulated cluster for driving a Source without transport
// or consensus: a canonical snapshot + chain, per-donor behaviors, and a
// Fetcher whose verification methods check fetched material against the
// canonical truth (standing in for real decision-proof verification).
type fakeWorld struct {
	mu sync.Mutex

	src Source

	// canonical truth
	env    *Envelope
	state  []byte
	blocks []blockchain.Block // numbers env.Height+1 .. tip

	donors map[int32]*fakeDonor

	// local replica state
	height    int64
	installed int
	restored  []byte
	applied   []int64 // block numbers replayed/applied, in order

	reqEnvelope map[int32]int
}

type fakeDonor struct {
	silent      bool // never answers anything
	corrupt     bool // serves chunks with flipped bytes
	pruned      bool // answers chunk requests with empty data
	forgedEnv   *Envelope
	forgedState []byte
}

func fakeChain(from, to int64) []blockchain.Block {
	var out []blockchain.Block
	for n := from; n <= to; n++ {
		out = append(out, blockchain.Block{Header: blockchain.Header{Number: n}})
	}
	return out
}

func newFakeWorld(snapHeight, tip int64, donors int) *fakeWorld {
	state := make([]byte, 3000)
	for i := range state {
		state[i] = byte(i % 251)
	}
	snap := storage.BuildEnvelope(snapHeight, []byte("meta"), state, 1024)
	w := &fakeWorld{
		env: &Envelope{
			Height:    snapHeight,
			BlockHash: crypto.HashBytes([]byte("canonical")),
			Snap:      snap,
			Tip:       tip,
		},
		state:       state,
		blocks:      fakeChain(snapHeight+1, tip),
		donors:      make(map[int32]*fakeDonor),
		reqEnvelope: make(map[int32]int),
	}
	for i := 0; i < donors; i++ {
		w.donors[int32(i)] = &fakeDonor{}
	}
	return w
}

func (w *fakeWorld) peers() []int32 {
	out := make([]int32, 0, len(w.donors))
	for i := 0; i < len(w.donors); i++ {
		out = append(out, int32(i))
	}
	return out
}

func (w *fakeWorld) donorEnv(d *fakeDonor) (*Envelope, []byte) {
	if d.forgedEnv != nil {
		return d.forgedEnv, d.forgedState
	}
	return w.env, w.state
}

// Fetcher implementation. Replies are delivered synchronously: Deliver
// never blocks, and the Source buffers generously.

func (w *fakeWorld) Height() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.height
}

func (w *fakeWorld) RequestEnvelope(peer int32) error {
	w.mu.Lock()
	d := w.donors[peer]
	w.reqEnvelope[peer]++
	w.mu.Unlock()
	if d == nil || d.silent {
		return nil
	}
	env, _ := w.donorEnv(d)
	e := *env
	w.src.Deliver(Response{Peer: peer, Kind: KindEnvelope, Envelope: &e})
	return nil
}

func (w *fakeWorld) RequestChunk(peer int32, height int64, index int) error {
	d := w.donors[peer]
	if d == nil || d.silent {
		return nil
	}
	env, state := w.donorEnv(d)
	if height != env.Height {
		return nil
	}
	var data []byte
	if !d.pruned {
		off := index * int(env.Snap.ChunkBytes)
		data = append([]byte(nil), state[off:off+env.Snap.ChunkLen(index)]...)
		if d.corrupt {
			data[0] ^= 0xff
		}
	}
	w.src.Deliver(Response{Peer: peer, Kind: KindChunk, Height: height, Index: index, Data: data})
	return nil
}

func (w *fakeWorld) RequestRange(peer int32, from, to int64) error {
	d := w.donors[peer]
	if d == nil || d.silent {
		return nil
	}
	env, _ := w.donorEnv(d)
	var out []blockchain.Block
	for _, b := range w.blocks {
		if b.Header.Number >= from && b.Header.Number <= to {
			out = append(out, b)
		}
	}
	if env != w.env {
		out = fakeChain(from, to) // forged continuation of the forged envelope
	}
	w.src.Deliver(Response{Peer: peer, Kind: KindRange, From: from, Blocks: out})
	return nil
}

func (w *fakeWorld) RequestLegacy(peer int32, have int64) error {
	d := w.donors[peer]
	if d == nil || d.silent {
		return nil
	}
	env, state := w.donorEnv(d)
	e := *env
	var tail []blockchain.Block
	if env == w.env {
		tail = append(tail, w.blocks...)
	} else {
		tail = fakeChain(env.Height+1, env.Tip)
	}
	w.src.Deliver(Response{
		Peer: peer, Kind: KindLegacy, Envelope: &e,
		State: append([]byte(nil), state...), Blocks: tail,
	})
	return nil
}

// VerifyBlocks stands in for decision-proof verification: blocks bind to
// the envelope only when both match the canonical truth.
func (w *fakeWorld) VerifyBlocks(env *Envelope, blocks []blockchain.Block) error {
	if env.Fingerprint() != w.env.Fingerprint() {
		return errors.New("fake: envelope does not match committed chain")
	}
	for i, b := range blocks {
		if b.Header.Number != env.Height+1+int64(i) {
			return errors.New("fake: range does not extend envelope")
		}
	}
	return nil
}

func (w *fakeWorld) InstallSnapshot(env *Envelope, state []byte) error {
	if int64(len(state)) != env.Snap.TotalBytes {
		return errors.New("fake: state length mismatch")
	}
	for i := range env.Snap.Chunks {
		off := i * int(env.Snap.ChunkBytes)
		if !env.Snap.VerifyChunk(i, state[off:off+env.Snap.ChunkLen(i)]) {
			return errors.New("fake: chunk digest mismatch")
		}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.installed++
	w.restored = append([]byte(nil), state...)
	w.height = env.Height
	return nil
}

func (w *fakeWorld) applyAt(blocks []blockchain.Block, verify bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, b := range blocks {
		if b.Header.Number != w.height+1 {
			return errors.New("fake: apply out of order")
		}
		if verify {
			for _, cb := range w.blocks {
				if cb.Header.Number == b.Header.Number && cb.Header.Hash() != b.Header.Hash() {
					return errors.New("fake: proof verification failed")
				}
			}
		}
		w.height = b.Header.Number
		w.applied = append(w.applied, b.Header.Number)
	}
	return nil
}

func (w *fakeWorld) ApplyBlocks(blocks []blockchain.Block) error  { return w.applyAt(blocks, true) }
func (w *fakeWorld) ReplayBlocks(blocks []blockchain.Block) error { return w.applyAt(blocks, false) }

var _ Fetcher = (*fakeWorld)(nil)

func runSync(t *testing.T, src Source, w *fakeWorld) (bool, error) {
	t.Helper()
	w.src = src
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return src.Sync(ctx, w, w.peers())
}

func testConfig() Config {
	return Config{InFlightPerPeer: 2, PeerTimeout: 40 * time.Millisecond, RangeBlocks: 8}
}

func TestPoolMultiDonorHappyPath(t *testing.T) {
	w := newFakeWorld(100, 160, 4)
	p := NewPool(testConfig())
	progressed, err := runSync(t, p, w)
	if err != nil || !progressed {
		t.Fatalf("sync: progressed=%v err=%v", progressed, err)
	}
	if w.installed != 1 || !bytes.Equal(w.restored, w.state) {
		t.Fatalf("snapshot: installed=%d, state match=%v", w.installed, bytes.Equal(w.restored, w.state))
	}
	if w.height != 160 {
		t.Fatalf("height = %d, want 160", w.height)
	}
	st := p.Stats()
	if st.ChunksFetched != int64(w.env.Snap.NumChunks()) {
		t.Fatalf("ChunksFetched = %d, want %d", st.ChunksFetched, w.env.Snap.NumChunks())
	}
	if st.BlocksFetched != 60 || st.Installs != 1 || st.Banned != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.PeersUsed < 2 {
		t.Fatalf("PeersUsed = %d, want work spread across donors", st.PeersUsed)
	}
}

func TestPoolTimeoutReassignsWork(t *testing.T) {
	w := newFakeWorld(100, 140, 4)
	w.donors[2].silent = true
	p := NewPool(testConfig())
	progressed, err := runSync(t, p, w)
	if err != nil || !progressed {
		t.Fatalf("sync: progressed=%v err=%v", progressed, err)
	}
	if w.height != 140 {
		t.Fatalf("height = %d, want 140", w.height)
	}
	st := p.Stats()
	if st.Banned != 0 {
		t.Fatalf("silent donor must be demoted, not banned: %+v", st)
	}
	if p.isBanned(2) {
		t.Fatal("silent donor ended up banned")
	}
}

func TestPoolCorruptChunkBansDonor(t *testing.T) {
	w := newFakeWorld(100, 160, 4)
	w.donors[1].corrupt = true
	p := NewPool(testConfig())
	progressed, err := runSync(t, p, w)
	if err != nil || !progressed {
		t.Fatalf("sync: progressed=%v err=%v", progressed, err)
	}
	if !bytes.Equal(w.restored, w.state) {
		t.Fatal("restored state diverges from canonical state")
	}
	if w.height != 160 {
		t.Fatalf("height = %d, want 160", w.height)
	}
	st := p.Stats()
	if st.Banned != 1 || !p.isBanned(1) {
		t.Fatalf("corrupt donor not banned: %+v", st)
	}
	if st.Redos == 0 {
		t.Fatal("banned donor's work was never reassigned")
	}

	// The ban persists: a later round must not even ask donor 1.
	w.height = 150 // pretend we fell behind again (below donors' tip)
	w.reqEnvelope = map[int32]int{}
	if _, err := runSync(t, p, w); err != nil {
		t.Fatalf("second round: %v", err)
	}
	if w.reqEnvelope[1] != 0 {
		t.Fatal("banned donor was asked for an envelope in a later round")
	}
}

func TestPoolPrunedDonorStruckNotBanned(t *testing.T) {
	w := newFakeWorld(100, 120, 4)
	w.donors[0].pruned = true
	p := NewPool(testConfig())
	progressed, err := runSync(t, p, w)
	if err != nil || !progressed {
		t.Fatalf("sync: progressed=%v err=%v", progressed, err)
	}
	st := p.Stats()
	if st.Banned != 0 || p.isBanned(0) {
		t.Fatalf("pruned donor must not be banned: %+v", st)
	}
	if st.Redos == 0 {
		t.Fatal("empty chunk replies should count as redos")
	}
}

func TestPoolForgedEnvelopeNeverInstalled(t *testing.T) {
	// Every donor colludes on a forged envelope claiming a higher snapshot
	// over fabricated state. The chunk digests are self-consistent, so only
	// block verification can expose the forgery — InstallSnapshot must never
	// run on it.
	w := newFakeWorld(100, 160, 4)
	forgedState := make([]byte, 2048)
	forged := &Envelope{
		Height:    500,
		BlockHash: crypto.HashBytes([]byte("forged")),
		Snap:      storage.BuildEnvelope(500, []byte("meta"), forgedState, 1024),
		Tip:       560,
	}
	for _, d := range w.donors {
		d.forgedEnv = forged
		d.forgedState = forgedState
	}
	p := NewPool(testConfig())
	progressed, err := runSync(t, p, w)
	if err == nil {
		t.Fatal("sync accepted a forged envelope")
	}
	if progressed || w.installed != 0 {
		t.Fatalf("forged snapshot reached Restore: progressed=%v installs=%d", progressed, w.installed)
	}
}

func TestPoolNoSnapshotTailOnly(t *testing.T) {
	w := newFakeWorld(100, 160, 4)
	w.height = 130 // ahead of the snapshot: only blocks 131..160 needed
	p := NewPool(testConfig())
	progressed, err := runSync(t, p, w)
	if err != nil || !progressed {
		t.Fatalf("sync: progressed=%v err=%v", progressed, err)
	}
	if w.installed != 0 {
		t.Fatal("snapshot installed although local state was ahead of it")
	}
	if w.height != 160 || w.applied[0] != 131 {
		t.Fatalf("height=%d first applied=%d", w.height, w.applied[0])
	}
}

func TestPoolAlreadyCaughtUp(t *testing.T) {
	w := newFakeWorld(100, 160, 4)
	w.height = 160
	p := NewPool(testConfig())
	progressed, err := runSync(t, p, w)
	if err != nil || progressed {
		t.Fatalf("sync: progressed=%v err=%v, want no-op", progressed, err)
	}
}

func TestLegacyHappyPath(t *testing.T) {
	w := newFakeWorld(100, 160, 4)
	l := NewLegacy()
	progressed, err := runSync(t, l, w)
	if err != nil || !progressed {
		t.Fatalf("sync: progressed=%v err=%v", progressed, err)
	}
	if w.installed != 1 || !bytes.Equal(w.restored, w.state) || w.height != 160 {
		t.Fatalf("installs=%d height=%d", w.installed, w.height)
	}
}

// Regression for the forged-height hole: a quorum of colluding donors
// offers an internally-consistent envelope whose height/state were never
// committed. Verification of the binding blocks must run BEFORE Restore,
// so the forged state never touches the application.
func TestLegacyForgedHeightEnvelopeRejected(t *testing.T) {
	w := newFakeWorld(100, 160, 4)
	forgedState := make([]byte, 2048)
	forged := &Envelope{
		Height:    500,
		BlockHash: crypto.HashBytes([]byte("forged")),
		Snap:      storage.BuildEnvelope(500, []byte("meta"), forgedState, 1024),
		Tip:       560,
	}
	for _, d := range w.donors {
		d.forgedEnv = forged
		d.forgedState = forgedState
	}
	l := NewLegacy()
	progressed, err := runSync(t, l, w)
	if err == nil || progressed {
		t.Fatalf("forged offer accepted: progressed=%v err=%v", progressed, err)
	}
	if w.installed != 0 {
		t.Fatal("forged snapshot reached Restore")
	}
}

// A lone donor offering a bare snapshot (no tail blocks to verify against)
// has nothing binding the claimed height to the committed chain: both
// Sources must refuse it rather than trust one peer.
func TestSingleDonorSnapshotOnlyRefused(t *testing.T) {
	w := newFakeWorld(100, 100, 1) // tip == snapshot height: no tail
	w.blocks = nil
	w.env.Tip = 100

	for name, src := range map[string]Source{"pool": NewPool(testConfig()), "legacy": NewLegacy()} {
		w.src = src
		w.installed = 0
		w.height = 0
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_, err := src.Sync(ctx, w, w.peers())
		cancel()
		if err == nil || !strings.Contains(err.Error(), "unverifiable") {
			t.Fatalf("%s: err = %v, want unverifiable-offer refusal", name, err)
		}
		if w.installed != 0 {
			t.Fatalf("%s: installed a snapshot nothing vouches for", name)
		}
	}
}
