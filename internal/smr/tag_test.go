package smr

import (
	"testing"

	"smartchain/internal/crypto"
)

// TestReplyViewTagRoundTrip: the reply codec carries flags and the full
// view tag bit-exactly, and the tag signature survives the round trip.
func TestReplyViewTagRoundTrip(t *testing.T) {
	key := crypto.SeededKeyPair("tag", 1)
	tag := ViewTag{
		ViewID:     3,
		Epoch:      7,
		MemberHash: crypto.HashBytes([]byte("members")),
		Height:     42,
	}
	sig, err := tag.Sign(2, key)
	if err != nil {
		t.Fatalf("sign tag: %v", err)
	}
	in := Reply{
		ReplicaID: 2,
		ClientID:  99,
		Seq:       12,
		Digest:    crypto.HashBytes([]byte("req")),
		Flags:     ReplyFlagBehind,
		Tag:       tag,
		TagSig:    sig,
		Result:    []byte("payload"),
	}
	out, err := DecodeReply(in.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Flags != ReplyFlagBehind || out.Tag != tag || string(out.Result) != "payload" {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if err := out.Tag.Verify(2, key.Public(), out.TagSig); err != nil {
		t.Fatalf("tag signature after round trip: %v", err)
	}
}

// TestReplyViewTagTamperRejected: rewriting any signed tag field — the
// membership hash above all (it is what the client's view tracker keys on)
// — must break the signature, as must re-binding the tag to another
// replica.
func TestReplyViewTagTamperRejected(t *testing.T) {
	key := crypto.SeededKeyPair("tag", 2)
	tag := ViewTag{ViewID: 1, Epoch: 2, MemberHash: crypto.HashBytes([]byte("m")), Height: 10}
	sig, err := tag.Sign(5, key)
	if err != nil {
		t.Fatalf("sign: %v", err)
	}
	if err := tag.Verify(5, key.Public(), sig); err != nil {
		t.Fatalf("genuine tag rejected: %v", err)
	}

	tampered := tag
	tampered.MemberHash = crypto.HashBytes([]byte("forged membership"))
	if err := tampered.Verify(5, key.Public(), sig); err == nil {
		t.Fatal("tampered membership hash accepted")
	}
	tampered = tag
	tampered.Height = 11
	if err := tampered.Verify(5, key.Public(), sig); err == nil {
		t.Fatal("tampered height accepted")
	}
	tampered = tag
	tampered.ViewID = 2
	if err := tampered.Verify(5, key.Public(), sig); err == nil {
		t.Fatal("tampered view id accepted")
	}
	if err := tag.Verify(6, key.Public(), sig); err == nil {
		t.Fatal("tag accepted for a different replica")
	}
}

// TestRequestReadFloorSignedAndEncoded: the floor travels in the wire
// encoding and is covered by the request signature, so a relay cannot
// weaken a session read to quorum-freshness by stripping it.
func TestRequestReadFloorSignedAndEncoded(t *testing.T) {
	key := crypto.SeededKeyPair("floor", 1)
	req, err := NewSignedUnordered(7, 3, 123, []byte("query"), key)
	if err != nil {
		t.Fatalf("sign: %v", err)
	}
	if req.ReadFloor != 123 || !req.Unordered() {
		t.Fatalf("request fields: floor=%d unordered=%v", req.ReadFloor, req.Unordered())
	}
	out, err := DecodeRequest(req.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.ReadFloor != 123 {
		t.Fatalf("floor after round trip: %d", out.ReadFloor)
	}
	if err := out.VerifySig(); err != nil {
		t.Fatalf("signature after round trip: %v", err)
	}
	out.ReadFloor = 0 // strip the floor
	if err := out.VerifySig(); err == nil {
		t.Fatal("stripped read floor passed signature verification")
	}
}

// TestViewInfoRoundTrip: the view-query answer codec.
func TestViewInfoRoundTrip(t *testing.T) {
	in := ViewInfo{ViewID: 9, Members: []int32{1, 2, 3, 4}}
	out, err := DecodeViewInfo(in.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.ViewID != 9 || len(out.Members) != 4 || out.Members[3] != 4 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if _, err := DecodeViewInfo([]byte{1, 2}); err == nil {
		t.Fatal("truncated view info accepted")
	}
}
