package smr

import (
	"testing"

	"smartchain/internal/crypto"
)

func signedBatch(t *testing.T, n int) []Request {
	t.Helper()
	key := crypto.SeededKeyPair("verify-test", 1)
	reqs := make([]Request, n)
	for i := range reqs {
		r, err := NewSignedRequest(1, uint64(i+1), []byte("verify-op"), key)
		if err != nil {
			t.Fatalf("sign request %d: %v", i, err)
		}
		reqs[i] = r
	}
	return reqs
}

func corrupt(r Request) Request {
	sig := append([]byte(nil), r.Sig...)
	sig[0] ^= 0xff
	r.Sig = sig
	return r
}

// TestVerifyBatchFallbackOnBadSignature is the delivery-path contract for
// both verification modes: the batched fast path must not let one rotten
// signature discard the honest requests around it, and must flag exactly the
// corrupted one.
func TestVerifyBatchFallbackOnBadSignature(t *testing.T) {
	const n, bad = 16, 5
	for _, mode := range []VerifyMode{VerifyParallel, VerifySequential} {
		t.Run(mode.String(), func(t *testing.T) {
			pool := NewVerifierPool(mode, 0)
			defer pool.Close()
			reqs := signedBatch(t, n)
			reqs[bad] = corrupt(reqs[bad])
			verdicts := pool.VerifyBatch(reqs)
			if len(verdicts) != n {
				t.Fatalf("got %d verdicts, want %d", len(verdicts), n)
			}
			for i, ok := range verdicts {
				if want := i != bad; ok != want {
					t.Fatalf("request %d verdict %v, want %v", i, ok, want)
				}
			}
		})
	}
}

func TestVerifyBatchAllValid(t *testing.T) {
	pool := NewVerifierPool(VerifyParallel, 0)
	defer pool.Close()
	for _, ok := range pool.VerifyBatch(signedBatch(t, 8)) {
		if !ok {
			t.Fatal("valid request rejected")
		}
	}
}

func TestVerifyBatchNoneModeSkipsChecks(t *testing.T) {
	pool := NewVerifierPool(VerifyNone, 0)
	defer pool.Close()
	reqs := signedBatch(t, 4)
	reqs[0] = corrupt(reqs[0])
	for i, ok := range pool.VerifyBatch(reqs) {
		if !ok {
			t.Fatalf("VerifyNone rejected request %d", i)
		}
	}
}
