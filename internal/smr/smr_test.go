package smr

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"smartchain/internal/crypto"
	"smartchain/internal/storage"
)

func signedReq(t *testing.T, client int64, seq uint64, op string) Request {
	t.Helper()
	key := crypto.SeededKeyPair("client", client)
	r, err := NewSignedRequest(client, seq, []byte(op), key)
	if err != nil {
		t.Fatalf("sign request: %v", err)
	}
	return r
}

func TestRequestSignVerify(t *testing.T) {
	r := signedReq(t, 1, 1, "op")
	if err := r.VerifySig(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	tampered := r
	tampered.Op = []byte("other")
	if err := tampered.VerifySig(); err == nil {
		t.Fatal("tampered op must fail verification")
	}
	tampered = r
	tampered.Seq = 99
	if err := tampered.VerifySig(); err == nil {
		t.Fatal("tampered seq must fail verification")
	}
	tampered = r
	tampered.PubKey = crypto.SeededKeyPair("client", 2).Public()
	if err := tampered.VerifySig(); err == nil {
		t.Fatal("swapped key must fail verification")
	}
}

func TestRequestEncodeDecode(t *testing.T) {
	r := signedReq(t, 42, 7, "transfer")
	got, err := DecodeRequest(r.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.ClientID != r.ClientID || got.Seq != r.Seq ||
		!bytes.Equal(got.Op, r.Op) || !got.PubKey.Equal(r.PubKey) ||
		!bytes.Equal(got.Sig, r.Sig) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, r)
	}
	if err := got.VerifySig(); err != nil {
		t.Fatalf("decoded request must still verify: %v", err)
	}
	if got.Digest() != r.Digest() {
		t.Fatal("digest must survive round trip")
	}
}

func TestDecodeRequestRejectsGarbage(t *testing.T) {
	if _, err := DecodeRequest([]byte("nonsense")); err == nil {
		t.Fatal("garbage must not decode")
	}
	r := signedReq(t, 1, 1, "x")
	enc := r.Encode()
	if _, err := DecodeRequest(enc[:len(enc)-3]); err == nil {
		t.Fatal("truncated request must not decode")
	}
	if _, err := DecodeRequest(append(enc, 0)); err == nil {
		t.Fatal("trailing bytes must not decode")
	}
}

func TestBatchEncodeDecode(t *testing.T) {
	b := Batch{Requests: []Request{
		signedReq(t, 1, 1, "a"),
		signedReq(t, 2, 1, "b"),
		signedReq(t, 1, 2, "c"),
	}}
	got, err := DecodeBatch(b.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got.Requests) != 3 {
		t.Fatalf("got %d requests", len(got.Requests))
	}
	if got.Digest() != b.Digest() {
		t.Fatal("batch digest must survive round trip")
	}
	empty := Batch{}
	gotE, err := DecodeBatch(empty.Encode())
	if err != nil || len(gotE.Requests) != 0 {
		t.Fatalf("empty batch round trip: %v %d", err, len(gotE.Requests))
	}
}

func TestBatchDigestDeterministicProperty(t *testing.T) {
	f := func(clientID int64, seq uint64, op []byte) bool {
		key := crypto.SeededKeyPair("p", clientID)
		r1, err1 := NewSignedRequest(clientID, seq, op, key)
		r2, err2 := NewSignedRequest(clientID, seq, op, key)
		if err1 != nil || err2 != nil {
			return false
		}
		b1 := Batch{Requests: []Request{r1}}
		b2 := Batch{Requests: []Request{r2}}
		return b1.Digest() == b2.Digest()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeBatchRejectsImplausibleCount(t *testing.T) {
	// A 4-byte buffer claiming 2^31 requests must fail fast, not allocate.
	data := []byte{0x7f, 0xff, 0xff, 0xff}
	if _, err := DecodeBatch(data); err == nil {
		t.Fatal("implausible count must be rejected")
	}
}

func TestReplyEncodeDecode(t *testing.T) {
	r := Reply{ReplicaID: 3, ClientID: 9, Seq: 4, Result: []byte("ok")}
	got, err := DecodeReply(r.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.ReplicaID != 3 || got.ClientID != 9 || got.Seq != 4 || string(got.Result) != "ok" {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestVerifierPoolModes(t *testing.T) {
	good := signedReq(t, 1, 1, "good")
	bad := good
	bad.Sig = make([]byte, crypto.SignatureSize)

	for _, mode := range []VerifyMode{VerifyParallel, VerifySequential} {
		p := NewVerifierPool(mode, 0)
		verdicts := p.VerifyBatch([]Request{good, bad, good})
		if !verdicts[0] || verdicts[1] || !verdicts[2] {
			t.Fatalf("mode %v: verdicts %v", mode, verdicts)
		}
		p.Close()
	}

	p := NewVerifierPool(VerifyNone, 0)
	defer p.Close()
	verdicts := p.VerifyBatch([]Request{good, bad})
	if !verdicts[0] || !verdicts[1] {
		t.Fatalf("none mode must accept everything: %v", verdicts)
	}
}

func TestVerifierPoolSubmitAsync(t *testing.T) {
	p := NewVerifierPool(VerifyParallel, 4)
	defer p.Close()
	const n = 64
	var accepted atomic.Int64
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		req := signedReq(t, int64(i%4), uint64(i), "op")
		if i%5 == 0 {
			req.Sig = make([]byte, crypto.SignatureSize) // forged
		}
		ok := p.Submit(req, func(_ Request, valid bool) {
			if valid {
				accepted.Add(1)
			}
			wg.Done()
		})
		if !ok {
			t.Fatal("submit to live pool must succeed")
		}
	}
	wg.Wait()
	want := int64(n - (n+4)/5)
	if accepted.Load() != want {
		t.Fatalf("accepted %d, want %d", accepted.Load(), want)
	}
}

func TestVerifierPoolSubmitAfterClose(t *testing.T) {
	p := NewVerifierPool(VerifyNone, 1)
	p.Close()
	if p.Submit(Request{}, func(Request, bool) {}) {
		t.Fatal("submit after close must fail")
	}
	p.Close() // double close must be safe
}

func TestVerifierPoolParallelIsFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const n = 512
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = signedReq(t, int64(i), 1, "op")
	}
	seq := NewVerifierPool(VerifySequential, 0)
	defer seq.Close()
	par := NewVerifierPool(VerifyParallel, 0)
	defer par.Close()

	start := time.Now()
	seq.VerifyBatch(reqs)
	seqTime := time.Since(start)
	start = time.Now()
	par.VerifyBatch(reqs)
	parTime := time.Since(start)
	// Table I shows >2× from parallel verification; with many cores we
	// should comfortably see 1.5× even under CI noise.
	if parTime*3/2 > seqTime {
		t.Logf("warning: parallel %v vs sequential %v (machine contention?)", parTime, seqTime)
	}
}

func TestBatcherBasics(t *testing.T) {
	b := NewBatcher(2)
	defer b.Close()
	if !b.Add(signedReq(t, 1, 1, "a")) {
		t.Fatal("add must succeed")
	}
	if b.Add(signedReq(t, 1, 1, "a")) {
		t.Fatal("duplicate (client,seq) must be rejected")
	}
	b.Add(signedReq(t, 1, 2, "b"))
	b.Add(signedReq(t, 1, 3, "c"))
	batch, ok := b.Next()
	if !ok || len(batch.Requests) != 2 {
		t.Fatalf("first batch: ok=%v len=%d", ok, len(batch.Requests))
	}
	batch2, ok := b.TryNext()
	if !ok || len(batch2.Requests) != 1 {
		t.Fatalf("second batch: ok=%v len=%d", ok, len(batch2.Requests))
	}
	if _, ok := b.TryNext(); ok {
		t.Fatal("empty batcher TryNext must fail")
	}
}

func TestBatcherMarkDeliveredReplayProtection(t *testing.T) {
	b := NewBatcher(10)
	defer b.Close()
	r := signedReq(t, 5, 1, "x")
	b.Add(r)
	batch, _ := b.TryNext()
	if b.Add(r) {
		t.Fatal("in-flight duplicate must be rejected")
	}
	b.MarkDelivered(batch.Requests)
	// Replays of an executed request must never be ordered again.
	if b.Add(r) {
		t.Fatal("executed request must be rejected on replay")
	}
	// But the client's next sequence number is accepted.
	if !b.Add(signedReq(t, 5, 2, "y")) {
		t.Fatal("next sequence must be accepted")
	}
}

func TestBatcherMarkDeliveredPurgesPendingCopies(t *testing.T) {
	// A request queued locally but ordered via another replica's proposal
	// must be purged so it is never proposed again.
	b := NewBatcher(10)
	defer b.Close()
	r1 := signedReq(t, 1, 1, "a")
	r2 := signedReq(t, 1, 2, "b")
	b.Add(r1)
	b.Add(r2)
	b.MarkDelivered([]Request{r1}) // delivered elsewhere
	batch, ok := b.TryNext()
	if !ok || len(batch.Requests) != 1 || batch.Requests[0].Seq != 2 {
		t.Fatalf("pending after purge: %+v", batch.Requests)
	}
}

func TestBatcherReadySignal(t *testing.T) {
	b := NewBatcher(10)
	defer b.Close()
	select {
	case <-b.Ready():
		t.Fatal("no ready token before Add")
	default:
	}
	b.Add(signedReq(t, 1, 1, "x"))
	select {
	case <-b.Ready():
	case <-time.After(time.Second):
		t.Fatal("ready token missing after Add")
	}
}

func TestBatcherRequeueDropsExecuted(t *testing.T) {
	b := NewBatcher(10)
	defer b.Close()
	r1 := signedReq(t, 1, 1, "a")
	r2 := signedReq(t, 1, 2, "b")
	b.Add(r1)
	b.Add(r2)
	batch, _ := b.TryNext()
	b.MarkDelivered([]Request{r1})
	b.Requeue(batch.Requests) // r1 already executed: must be dropped
	got, _ := b.TryNext()
	if len(got.Requests) != 1 || got.Requests[0].Seq != 2 {
		t.Fatalf("requeue kept executed request: %+v", got.Requests)
	}
}

func TestBatcherRequeuePreservesOrder(t *testing.T) {
	b := NewBatcher(10)
	defer b.Close()
	r1 := signedReq(t, 1, 1, "one")
	r2 := signedReq(t, 1, 2, "two")
	b.Add(r1)
	b.Add(r2)
	batch, _ := b.TryNext()
	if len(batch.Requests) != 2 {
		t.Fatalf("expected both requests, got %d", len(batch.Requests))
	}
	b.Add(signedReq(t, 1, 3, "three"))
	b.Requeue(batch.Requests)
	got, _ := b.TryNext()
	if len(got.Requests) != 3 || got.Requests[0].Seq != 1 || got.Requests[1].Seq != 2 || got.Requests[2].Seq != 3 {
		t.Fatalf("requeue order wrong: %+v", got.Requests)
	}
}

func TestBatcherNextBlocksUntilAdd(t *testing.T) {
	b := NewBatcher(10)
	defer b.Close()
	got := make(chan Batch, 1)
	go func() {
		batch, ok := b.Next()
		if ok {
			got <- batch
		}
	}()
	time.Sleep(20 * time.Millisecond)
	b.Add(signedReq(t, 1, 1, "late"))
	select {
	case batch := <-got:
		if len(batch.Requests) != 1 {
			t.Fatalf("got %d requests", len(batch.Requests))
		}
	case <-time.After(time.Second):
		t.Fatal("Next did not wake on Add")
	}
}

func TestBatcherCloseUnblocksNext(t *testing.T) {
	b := NewBatcher(10)
	done := make(chan bool, 1)
	go func() {
		_, ok := b.Next()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	b.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Next after close must report not-ok")
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not unblock Next")
	}
	if b.Add(signedReq(t, 1, 1, "x")) {
		t.Fatal("Add after close must fail")
	}
}

func TestDurableLoggerGroupCommit(t *testing.T) {
	log := storage.NewSimLog(nil)
	d := NewDurableLogger(log, StorageSync)

	const n = 50
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		d.Append([]byte{byte(i)}, func(err error) {
			if err != nil {
				t.Errorf("durable callback error: %v", err)
			}
			wg.Done()
		})
	}
	wg.Wait()
	records, syncs := d.Stats()
	if records != n {
		t.Fatalf("records: %d", records)
	}
	if syncs >= n {
		t.Fatalf("group commit must batch syncs: %d syncs for %d records", syncs, records)
	}
	d.Close()
	entries, err := log.ReadAll()
	if err != nil {
		t.Fatalf("readall: %v", err)
	}
	if len(entries) != n {
		t.Fatalf("log has %d entries", len(entries))
	}
	// FIFO order preserved.
	for i, e := range entries {
		if len(e) != 1 || e[0] != byte(i) {
			t.Fatalf("entry %d out of order: %v", i, e)
		}
	}
}

func TestDurableLoggerMemoryModeSkipsSync(t *testing.T) {
	disk := &storage.SimDisk{SyncLatency: 50 * time.Millisecond}
	log := storage.NewSimLog(disk)
	d := NewDurableLogger(log, StorageMemory)
	defer d.Close()

	done := make(chan error, 1)
	start := time.Now()
	d.Append([]byte("x"), func(err error) { done <- err })
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("callback err: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("callback never fired")
	}
	if time.Since(start) > 25*time.Millisecond {
		t.Fatal("memory mode must not pay sync latency")
	}
}

func TestDurableLoggerAppendAfterClose(t *testing.T) {
	d := NewDurableLogger(storage.NewMemLog(), StorageSync)
	d.Close()
	got := make(chan error, 1)
	d.Append([]byte("x"), func(err error) { got <- err })
	select {
	case err := <-got:
		if !errors.Is(err, storage.ErrClosed) {
			t.Fatalf("want ErrClosed, got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("callback never fired after close")
	}
	d.Close() // double close safe
}

func TestDurableLoggerDrainsOnClose(t *testing.T) {
	log := storage.NewSimLog(nil)
	d := NewDurableLogger(log, StorageSync)
	for i := 0; i < 20; i++ {
		d.Append([]byte{byte(i)}, nil)
	}
	d.Close()
	entries, _ := log.ReadAll()
	if len(entries) != 20 {
		t.Fatalf("close must drain queue: %d/20 entries", len(entries))
	}
}

func TestModeStrings(t *testing.T) {
	if VerifyParallel.String() != "parallel" || VerifySequential.String() != "sequential" ||
		VerifyNone.String() != "none" || VerifyMode(0).String() != "unknown" {
		t.Fatal("VerifyMode strings")
	}
	if StorageSync.String() != "sync" || StorageAsync.String() != "async" ||
		StorageMemory.String() != "memory" || StorageMode(0).String() != "unknown" {
		t.Fatal("StorageMode strings")
	}
}
