package smr

import "testing"

func windowReq(client int64, seq uint64) Request {
	return Request{ClientID: client, Seq: seq, Op: []byte{0x01}}
}

// TestBatcherWindowedHandoutNoOverlap models the pipelined driver: W
// batches handed out before any of them executes. No request may appear in
// two concurrent batches, duplicates must stay out while their original is
// outstanding, and out-of-order delivery (decisions commit in instance
// order, but MarkDelivered timing varies) keeps the dedupe sound.
func TestBatcherWindowedHandoutNoOverlap(t *testing.T) {
	b := NewBatcher(8)
	for c := int64(1); c <= 4; c++ {
		for s := uint64(1); s <= 8; s++ {
			if !b.Add(windowReq(c, s)) {
				t.Fatalf("add %d/%d rejected", c, s)
			}
		}
	}

	// Four full batches outstanding at once — the W window slots.
	seen := make(map[dedupeKey]bool)
	var batches []Batch
	for i := 0; i < 4; i++ {
		batch, ok := b.TryNext()
		if !ok {
			t.Fatalf("batch %d not handed out", i)
		}
		if len(batch.Requests) != 8 {
			t.Fatalf("batch %d size %d", i, len(batch.Requests))
		}
		for _, r := range batch.Requests {
			k := dedupeKey{r.ClientID, r.Seq}
			if seen[k] {
				t.Fatalf("request %+v handed out in two concurrent batches", k)
			}
			seen[k] = true
		}
		batches = append(batches, batch)
	}
	if got := b.Outstanding(); got != 32 {
		t.Fatalf("outstanding %d, want 32", got)
	}
	if _, ok := b.TryNext(); ok {
		t.Fatal("queue should be drained")
	}

	// Re-adding a handed-out request (client retransmission) must not
	// queue a second copy.
	if b.Add(windowReq(1, 1)) {
		t.Fatal("duplicate of an outstanding request was accepted")
	}
	if b.Pending() != 0 {
		t.Fatalf("pending %d after duplicate add", b.Pending())
	}

	// Deliver the batches out of order; dedupe state drains accordingly.
	b.MarkDelivered(batches[2].Requests)
	b.MarkDelivered(batches[0].Requests)
	b.MarkDelivered(batches[3].Requests)
	b.MarkDelivered(batches[1].Requests)
	if got := b.Outstanding(); got != 0 {
		t.Fatalf("outstanding %d after delivery, want 0", got)
	}

	// Executed requests can never be ordered twice: the per-client
	// watermark rejects replays even though the dedupe slots are free.
	if b.Add(windowReq(1, 1)) {
		t.Fatal("replay of an executed request was accepted")
	}
	if _, ok := b.TryNext(); ok {
		t.Fatal("replay must not produce a batch")
	}
}

// TestBatcherFreshFiltersDuplicateOrdering covers the execution-time dedupe
// that keeps a request ordered twice (leader-change re-proposal plus a
// fresh slot) from executing twice: Fresh judges against the committed
// watermark, including duplicates within a single batch.
func TestBatcherFreshFiltersDuplicateOrdering(t *testing.T) {
	b := NewBatcher(8)

	first := []Request{windowReq(1, 1), windowReq(1, 2), windowReq(2, 1)}
	for i, f := range b.Fresh(first) {
		if !f {
			t.Fatalf("first ordering: request %d not fresh", i)
		}
	}
	b.MarkDelivered(first)

	// A later block re-orders two of them alongside a new request.
	again := []Request{windowReq(1, 2), windowReq(1, 3), windowReq(2, 1)}
	got := b.Fresh(again)
	want := []bool{false, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("re-ordering: fresh[%d]=%v, want %v", i, got[i], want[i])
		}
	}

	// Duplicates within one batch: only the first occurrence executes.
	intra := []Request{windowReq(3, 5), windowReq(3, 5)}
	got = b.Fresh(intra)
	if !got[0] || got[1] {
		t.Fatalf("intra-batch duplicate: fresh=%v, want [true false]", got)
	}

	// Watermark snapshot/restore round-trips (checkpoint install).
	b2 := NewBatcher(8)
	b2.RestoreWatermarks(b.Watermarks())
	if f := b2.Fresh([]Request{windowReq(1, 2)}); f[0] {
		t.Fatal("restored watermark must reject an executed request")
	}
	if f := b2.Fresh([]Request{windowReq(1, 3)}); !f[0] {
		t.Fatal("restored watermark must accept the next sequence")
	}
}

// TestBatcherRequeueAfterAbandonedInstance covers the view-boundary drain:
// a batch proposed to an instance that restarts under a new view returns to
// the queue and is handed out again exactly once.
func TestBatcherRequeueAfterAbandonedInstance(t *testing.T) {
	b := NewBatcher(4)
	for s := uint64(1); s <= 8; s++ {
		if !b.Add(windowReq(7, s)) {
			t.Fatalf("add %d rejected", s)
		}
	}
	first, ok := b.TryNext()
	if !ok {
		t.Fatal("first batch")
	}
	second, ok := b.TryNext()
	if !ok {
		t.Fatal("second batch")
	}
	if got := b.Outstanding(); got != 8 {
		t.Fatalf("outstanding %d, want 8", got)
	}

	// The window drains before the second instance commits.
	b.Requeue(second.Requests)
	if got := b.Outstanding(); got != len(first.Requests) {
		t.Fatalf("outstanding %d after requeue, want %d", got, len(first.Requests))
	}

	again, ok := b.TryNext()
	if !ok {
		t.Fatal("requeued batch not handed out")
	}
	if len(again.Requests) != len(second.Requests) {
		t.Fatalf("requeued batch size %d, want %d", len(again.Requests), len(second.Requests))
	}
	for i := range again.Requests {
		if again.Requests[i].Seq != second.Requests[i].Seq {
			t.Fatalf("requeued order broken at %d: seq %d want %d", i, again.Requests[i].Seq, second.Requests[i].Seq)
		}
	}

	b.MarkDelivered(first.Requests)
	b.MarkDelivered(again.Requests)
	if got := b.Outstanding(); got != 0 {
		t.Fatalf("outstanding %d at end, want 0", got)
	}
	// Nothing comes back a second time.
	for s := uint64(1); s <= 8; s++ {
		if b.Add(windowReq(7, s)) {
			t.Fatalf("executed request %d re-accepted", s)
		}
	}
	if _, ok := b.TryNext(); ok {
		t.Fatal("no further batches expected")
	}
}
