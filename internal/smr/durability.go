package smr

import (
	"sync"

	"smartchain/internal/storage"
)

// StorageMode selects how the ledger/log reaches stable storage — the
// persistence axis of Table I and Fig. 6.
type StorageMode int

const (
	// StorageSync makes replies wait for the record to be fsynced
	// (synchronous writes: the Sy configurations; with the blockchain layer
	// this yields 0-/1-Persistence depending on the variant).
	StorageSync StorageMode = iota + 1
	// StorageAsync writes in the background; a crash may lose a small
	// suffix (λ-Persistence).
	StorageAsync
	// StorageMemory keeps the log in memory only (∞-Persistence).
	StorageMemory
)

// String implements fmt.Stringer for experiment labels.
func (m StorageMode) String() string {
	switch m {
	case StorageSync:
		return "sync"
	case StorageAsync:
		return "async"
	case StorageMemory:
		return "memory"
	default:
		return "unknown"
	}
}

// DurableLogger is the Dura-SMaRt write path (paper §II-C2, [37]): records
// are appended by the delivery thread and synced by a dedicated logger
// goroutine that drains *everything* queued before issuing one fsync, so a
// burst of k batches pays ≈1 sync. The onDurable callback of each record
// fires once its durability point has been reached, which is what gates
// client replies in synchronous modes.
type DurableLogger struct {
	log  storage.Log
	mode StorageMode

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []durableEntry
	closed  bool
	syncs   int64
	records int64

	done chan struct{}
}

type durableEntry struct {
	data      []byte
	onDurable func(error)
}

// NewDurableLogger starts the logger goroutine over log.
func NewDurableLogger(log storage.Log, mode StorageMode) *DurableLogger {
	d := &DurableLogger{
		log:  log,
		mode: mode,
		done: make(chan struct{}),
	}
	d.cond = sync.NewCond(&d.mu)
	go d.run()
	return d
}

// Append queues one record. onDurable (optional) fires when the record is
// durable — immediately after the group sync in Sync/Async modes, or right
// away in Memory mode. In StorageSync callers typically block on it before
// replying; in StorageAsync they don't, which is the entire difference
// between the two configurations.
func (d *DurableLogger) Append(record []byte, onDurable func(error)) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		if onDurable != nil {
			onDurable(storage.ErrClosed)
		}
		return
	}
	cp := make([]byte, len(record))
	copy(cp, record)
	d.queue = append(d.queue, durableEntry{data: cp, onDurable: onDurable})
	d.cond.Signal()
	d.mu.Unlock()
}

// run drains the queue: append every waiting record, one sync, notify all.
func (d *DurableLogger) run() {
	defer close(d.done)
	for {
		d.mu.Lock()
		for len(d.queue) == 0 && !d.closed {
			d.cond.Wait()
		}
		if len(d.queue) == 0 && d.closed {
			d.mu.Unlock()
			return
		}
		entries := d.queue
		d.queue = nil
		d.mu.Unlock()

		var err error
		for _, e := range entries {
			if appendErr := d.log.Append(e.data); appendErr != nil && err == nil {
				err = appendErr
			}
		}
		if err == nil && d.mode != StorageMemory {
			err = d.log.Sync()
		}
		d.mu.Lock()
		d.syncs++
		d.records += int64(len(entries))
		d.mu.Unlock()
		for _, e := range entries {
			if e.onDurable != nil {
				e.onDurable(err)
			}
		}
	}
}

// Stats returns (records logged, group syncs issued). records/syncs is the
// group-commit amortization factor.
func (d *DurableLogger) Stats() (records, syncs int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.records, d.syncs
}

// Mode returns the configured storage mode.
func (d *DurableLogger) Mode() StorageMode { return d.mode }

// Close drains remaining records and stops the logger goroutine.
func (d *DurableLogger) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		<-d.done
		return
	}
	d.closed = true
	d.cond.Broadcast()
	d.mu.Unlock()
	<-d.done
}
