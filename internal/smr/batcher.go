package smr

import (
	"sort"
	"sync"
	"time"
)

// Batcher accumulates verified client requests and hands out batches of at
// most maxBatch for the next consensus instance (paper §II-C1: "a leader
// replica proposing a batch of client operations"). It deduplicates by
// (client, seq), tracks which sequence numbers each client has executed so
// replayed or duplicate requests are never ordered twice, and exposes a
// readiness channel so a driver can select on "work available" alongside
// other events.
//
// A pipelined driver (ordering window W > 1) calls TryNext up to W times
// before any of the handed-out batches executes; handed-out requests stay
// in the dedupe set until MarkDelivered (committed) or Requeue (the
// instance was abandoned), so no request can appear in two concurrent
// batches. Outstanding reports how many requests are in that handed-out
// state.
//
// The executed record per client is a low watermark plus a sparse set of
// executed sequence numbers above it, NOT a plain high watermark: an
// asynchronous client keeps many invocations in flight on one identity,
// and with W concurrent instances seq 6 can commit before seq 5. A high
// watermark would then misclassify seq 5 as a replay forever; the sparse
// set keeps the gap open until seq 5 really executes. The state remains a
// pure function of the committed prefix (plus the restored checkpoint), so
// every replica judges freshness identically.
type Batcher struct {
	mu       sync.Mutex
	cond     *sync.Cond
	pending  []Request
	inFlight map[dedupeKey]bool
	handed   map[dedupeKey]bool       // handed out in a batch, not yet delivered
	executed map[int64]*executedMarks // sender ident → executed-seq record
	maxBatch int
	// gcHorizon is the session GC horizon in blocks: an executed record
	// untouched for more than this many committed blocks is evicted (its
	// client's "session" expired). 0 disables eviction. Eviction is driven
	// exclusively by committed block heights (MarkDeliveredAt), never by
	// wall time, so every replica evicts identically.
	gcHorizon int64
	closed    bool
	ready     chan struct{}
}

type dedupeKey struct {
	ident int64 // Request.Ident(): fingerprint of (ClientID, PubKey)
	seq   uint64
}

// seqWindowSpan bounds how far the sparse executed set may trail behind a
// client's newest executed sequence number. A sequence the client abandoned
// (cancelled context, crash) would otherwise leave a hole that pins the low
// watermark forever; once it falls this far behind it is deterministically
// declared stale — the same closure BFT-SMaRt's request watermarks apply.
const seqWindowSpan = 1 << 16

// executedMarks is one client's executed record: every seq ≤ low has
// executed or is permanently stale; above contains the executed seqs > low.
// lastSeen is the height of the last committed block that touched the
// record — a pure function of the committed prefix, so the session GC
// evicts the same records at the same heights on every replica.
type executedMarks struct {
	low      uint64
	max      uint64
	above    map[uint64]struct{}
	lastSeen int64
}

func (m *executedMarks) contains(seq uint64) bool {
	if seq <= m.low {
		return true
	}
	_, ok := m.above[seq]
	return ok
}

// mark records seq as executed and advances the contiguous low watermark,
// then closes the window: holes older than seqWindowSpan behind max become
// stale. Deterministic given the same mark sequence.
func (m *executedMarks) mark(seq uint64) {
	if m.contains(seq) {
		return
	}
	m.above[seq] = struct{}{}
	if seq > m.max {
		m.max = seq
	}
	for {
		if _, ok := m.above[m.low+1]; !ok {
			break
		}
		m.low++
		delete(m.above, m.low)
	}
	if m.max > seqWindowSpan && m.low < m.max-seqWindowSpan {
		m.low = m.max - seqWindowSpan
		for s := range m.above {
			if s <= m.low {
				delete(m.above, s)
			}
		}
	}
}

// Watermark is the serializable form of one client's executed record,
// shipped inside checkpoints and state transfer.
type Watermark struct {
	// Low is the contiguous watermark: every seq ≤ Low is executed/stale.
	Low uint64
	// Executed lists the executed seqs above Low, sorted ascending.
	Executed []uint64
	// LastSeen is the height of the last committed block that touched the
	// record; the session GC measures idleness from it. Serialized through
	// the checkpoint envelope so a replica restoring from a snapshot evicts
	// exactly as the replicas that executed those blocks live did.
	LastSeen int64
}

// NewBatcher creates a batcher with the given maximum batch size (the
// paper's experiments use 512).
func NewBatcher(maxBatch int) *Batcher {
	if maxBatch <= 0 {
		maxBatch = 512
	}
	b := &Batcher{
		inFlight: make(map[dedupeKey]bool),
		handed:   make(map[dedupeKey]bool),
		executed: make(map[int64]*executedMarks),
		maxBatch: maxBatch,
		ready:    make(chan struct{}, 1),
	}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// marksFor returns (creating on demand) the executed record for a sender
// identity (Request.Ident()).
func (b *Batcher) marksFor(ident int64) *executedMarks {
	m := b.executed[ident]
	if m == nil {
		m = &executedMarks{above: make(map[uint64]struct{})}
		b.executed[ident] = m
	}
	return m
}

// executedLocked reports whether (ident, seq) has already executed.
func (b *Batcher) executedLocked(ident int64, seq uint64) bool {
	m := b.executed[ident]
	return m != nil && m.contains(seq)
}

// Add queues a verified request. Duplicates — same (client, seq) already
// pending, or a sequence number the client has already executed — are
// dropped. Returns whether it was queued.
func (b *Batcher) Add(req Request) bool {
	if !req.Orderable() {
		return false // unordered requests never enter the ordering queue
	}
	k := dedupeKey{req.Ident(), req.Seq}
	b.mu.Lock()
	if b.closed || b.inFlight[k] || b.executedLocked(k.ident, req.Seq) {
		b.mu.Unlock()
		return false
	}
	b.inFlight[k] = true
	b.pending = append(b.pending, req)
	b.cond.Signal()
	b.mu.Unlock()
	b.signalReady()
	return true
}

func (b *Batcher) signalReady() {
	select {
	case b.ready <- struct{}{}:
	default:
	}
}

// Ready returns a channel that receives a token when requests may be
// pending. Consumers re-check with TryNext; spurious wakeups are possible.
func (b *Batcher) Ready() <-chan struct{} { return b.ready }

// Next blocks until at least one request is pending (or the batcher is
// closed), then returns up to maxBatch requests. Returns false when closed.
func (b *Batcher) Next() (Batch, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.pending) == 0 && !b.closed {
		b.cond.Wait()
	}
	if b.closed {
		return Batch{}, false
	}
	return b.takeLocked(), true
}

// TryNext returns a batch if any requests are pending, without blocking.
func (b *Batcher) TryNext() (Batch, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed || len(b.pending) == 0 {
		return Batch{}, false
	}
	return b.takeLocked(), true
}

func (b *Batcher) takeLocked() Batch {
	n := min(len(b.pending), b.maxBatch)
	batch := Batch{Timestamp: time.Now().UnixNano(), Requests: make([]Request, n)}
	copy(batch.Requests, b.pending[:n])
	for i := 0; i < n; i++ {
		b.handed[dedupeKey{batch.Requests[i].Ident(), batch.Requests[i].Seq}] = true
	}
	rest := copy(b.pending, b.pending[n:])
	// Zero the moved-from tail so the GC can reclaim request payloads.
	for i := rest; i < len(b.pending); i++ {
		b.pending[i] = Request{}
	}
	b.pending = b.pending[:rest]
	if rest > 0 {
		b.signalReady()
	}
	return batch
}

// MarkDelivered records that the given requests were ordered and executed:
// their dedupe slots are released, the per-client executed record absorbs
// their sequence numbers, and any pending copies (queued locally but
// ordered via another replica's proposal) are purged so they are never
// proposed again.
func (b *Batcher) MarkDelivered(reqs []Request) {
	b.MarkDeliveredAt(0, reqs)
}

// MarkDeliveredAt is MarkDelivered with the committing block's height: the
// touched executed records stamp it as their lastSeen, and records idle for
// more than the session GC horizon are evicted. Height 0 (the plain
// MarkDelivered path, used by the baselines) never advances lastSeen and
// never evicts.
func (b *Batcher) MarkDeliveredAt(height int64, reqs []Request) {
	if len(reqs) == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	delivered := make(map[dedupeKey]bool, len(reqs))
	for i := range reqs {
		if !reqs[i].Orderable() {
			// Only a Byzantine leader's decided value can carry an
			// unordered request; its UnorderedSeqBit sequence number must
			// never reach the executed record (whose staleness closure it
			// would weaponize against the signer's ordered sequence space).
			continue
		}
		k := dedupeKey{reqs[i].Ident(), reqs[i].Seq}
		delivered[k] = true
		delete(b.inFlight, k)
		delete(b.handed, k)
		m := b.marksFor(k.ident)
		m.mark(reqs[i].Seq)
		if height > m.lastSeen {
			m.lastSeen = height
		}
	}
	kept := b.pending[:0]
	for _, p := range b.pending {
		if !delivered[dedupeKey{p.Ident(), p.Seq}] {
			kept = append(kept, p)
		}
	}
	for i := len(kept); i < len(b.pending); i++ {
		b.pending[i] = Request{}
	}
	b.pending = kept
	b.gcExecutedLocked(height)
}

// SetSessionGC configures the per-client session GC horizon in blocks
// (0 disables). Must be identical on every replica of a deployment: the
// horizon is part of what makes the executed records a deterministic
// function of the committed prefix.
func (b *Batcher) SetSessionGC(blocks int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if blocks < 0 {
		blocks = 0
	}
	b.gcHorizon = blocks
}

// gcExecutedLocked evicts executed records idle past the horizon. A very
// long-lived deployment otherwise accumulates one record per client
// identity forever (ROADMAP follow-up from PR 3). An evicted client that
// reuses an ancient sequence number is no longer filtered — the horizon is
// the operator's replay-window-vs-memory trade, exactly as in BFT-SMaRt's
// session eviction.
func (b *Batcher) gcExecutedLocked(height int64) {
	if b.gcHorizon <= 0 || height <= b.gcHorizon {
		return
	}
	for ident, m := range b.executed {
		if height-m.lastSeen > b.gcHorizon {
			delete(b.executed, ident)
		}
	}
}

// Requeue returns requests to the front of the pending queue. Used when a
// proposed batch was not decided (leader change decided a different value):
// the requests are still valid and must eventually be ordered (liveness).
// Requests already executed are dropped.
func (b *Batcher) Requeue(reqs []Request) {
	if len(reqs) == 0 {
		return
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	merged := make([]Request, 0, len(reqs)+len(b.pending))
	for i := range reqs {
		delete(b.handed, dedupeKey{reqs[i].Ident(), reqs[i].Seq})
		if reqs[i].Orderable() && !b.executedLocked(reqs[i].Ident(), reqs[i].Seq) {
			merged = append(merged, reqs[i])
		}
	}
	merged = append(merged, b.pending...)
	b.pending = merged
	if len(b.pending) > 0 {
		b.cond.Signal()
	}
	b.mu.Unlock()
	b.signalReady()
}

// Pending returns the number of queued requests.
func (b *Batcher) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.pending)
}

// Outstanding returns the number of requests handed out in batches and not
// yet delivered or requeued — with a pipelined driver, the requests inside
// the up-to-W concurrently ordered batches.
func (b *Batcher) Outstanding() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.handed)
}

// Fresh reports, for each request of an ordered batch, whether it executes
// for the first time: its (client, seq) is not in the client's executed
// record and did not appear earlier in the same batch. The commit path
// calls it BEFORE MarkDelivered absorbs the batch. The result is
// deterministic across replicas because the executed record is a pure
// function of the committed chain prefix (plus the restored checkpoint):
// with a pipelined window a request can be ordered twice — once in a
// leader-change re-proposal and once in a fresh slot — and every replica
// must skip the same second execution.
func (b *Batcher) Fresh(reqs []Request) []bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]bool, len(reqs))
	inBatch := make(map[dedupeKey]bool, len(reqs))
	for i := range reqs {
		if !reqs[i].Orderable() {
			continue // never fresh: must not execute via the ordered path
		}
		k := dedupeKey{reqs[i].Ident(), reqs[i].Seq}
		if inBatch[k] || b.executedLocked(k.ident, k.seq) {
			continue
		}
		out[i] = true
		inBatch[k] = true
	}
	return out
}

// Watermarks snapshots the per-client executed records for a checkpoint.
func (b *Batcher) Watermarks() map[int64]Watermark {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[int64]Watermark, len(b.executed))
	for c, m := range b.executed {
		w := Watermark{Low: m.low, LastSeen: m.lastSeen, Executed: make([]uint64, 0, len(m.above))}
		for s := range m.above {
			w.Executed = append(w.Executed, s)
		}
		sort.Slice(w.Executed, func(i, j int) bool { return w.Executed[i] < w.Executed[j] })
		out[c] = w
	}
	return out
}

// RestoreWatermarks replaces the executed records when installing a
// checkpoint: replay after the snapshot must judge freshness exactly as the
// replicas that executed those blocks live did.
func (b *Batcher) RestoreWatermarks(w map[int64]Watermark) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.executed = make(map[int64]*executedMarks, len(w))
	for c, wm := range w {
		m := &executedMarks{low: wm.Low, max: wm.Low, lastSeen: wm.LastSeen,
			above: make(map[uint64]struct{}, len(wm.Executed))}
		for _, s := range wm.Executed {
			if s > m.low {
				m.above[s] = struct{}{}
				if s > m.max {
					m.max = s
				}
			}
		}
		b.executed[c] = m
	}
}

// Close unblocks Next and rejects further adds.
func (b *Batcher) Close() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
	b.signalReady()
}
