package smr

import (
	"sync"
)

// Batcher accumulates verified client requests and hands out batches of at
// most maxBatch for the next consensus instance (paper §II-C1: "a leader
// replica proposing a batch of client operations"). It deduplicates by
// (client, seq), tracks the highest executed sequence number per client so
// replayed or duplicate requests are never ordered twice, and exposes a
// readiness channel so a driver can select on "work available" alongside
// other events.
//
// A pipelined driver (ordering window W > 1) calls TryNext up to W times
// before any of the handed-out batches executes; handed-out requests stay
// in the dedupe set until MarkDelivered (committed) or Requeue (the
// instance was abandoned), so no request can appear in two concurrent
// batches. Outstanding reports how many requests are in that handed-out
// state.
type Batcher struct {
	mu       sync.Mutex
	cond     *sync.Cond
	pending  []Request
	inFlight map[dedupeKey]bool
	handed   map[dedupeKey]bool // handed out in a batch, not yet delivered
	lastExec map[int64]uint64   // client → highest executed seq
	maxBatch int
	closed   bool
	ready    chan struct{}
}

type dedupeKey struct {
	client int64
	seq    uint64
}

// NewBatcher creates a batcher with the given maximum batch size (the
// paper's experiments use 512).
func NewBatcher(maxBatch int) *Batcher {
	if maxBatch <= 0 {
		maxBatch = 512
	}
	b := &Batcher{
		inFlight: make(map[dedupeKey]bool),
		handed:   make(map[dedupeKey]bool),
		lastExec: make(map[int64]uint64),
		maxBatch: maxBatch,
		ready:    make(chan struct{}, 1),
	}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Add queues a verified request. Duplicates — same (client, seq) already
// pending, or a sequence number at or below the client's last executed one
// — are dropped. Returns whether it was queued.
func (b *Batcher) Add(req Request) bool {
	k := dedupeKey{req.ClientID, req.Seq}
	b.mu.Lock()
	if b.closed || b.inFlight[k] || req.Seq <= b.lastExec[req.ClientID] {
		b.mu.Unlock()
		return false
	}
	b.inFlight[k] = true
	b.pending = append(b.pending, req)
	b.cond.Signal()
	b.mu.Unlock()
	b.signalReady()
	return true
}

func (b *Batcher) signalReady() {
	select {
	case b.ready <- struct{}{}:
	default:
	}
}

// Ready returns a channel that receives a token when requests may be
// pending. Consumers re-check with TryNext; spurious wakeups are possible.
func (b *Batcher) Ready() <-chan struct{} { return b.ready }

// Next blocks until at least one request is pending (or the batcher is
// closed), then returns up to maxBatch requests. Returns false when closed.
func (b *Batcher) Next() (Batch, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.pending) == 0 && !b.closed {
		b.cond.Wait()
	}
	if b.closed {
		return Batch{}, false
	}
	return b.takeLocked(), true
}

// TryNext returns a batch if any requests are pending, without blocking.
func (b *Batcher) TryNext() (Batch, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed || len(b.pending) == 0 {
		return Batch{}, false
	}
	return b.takeLocked(), true
}

func (b *Batcher) takeLocked() Batch {
	n := min(len(b.pending), b.maxBatch)
	batch := Batch{Requests: make([]Request, n)}
	copy(batch.Requests, b.pending[:n])
	for i := 0; i < n; i++ {
		b.handed[dedupeKey{batch.Requests[i].ClientID, batch.Requests[i].Seq}] = true
	}
	rest := copy(b.pending, b.pending[n:])
	// Zero the moved-from tail so the GC can reclaim request payloads.
	for i := rest; i < len(b.pending); i++ {
		b.pending[i] = Request{}
	}
	b.pending = b.pending[:rest]
	if rest > 0 {
		b.signalReady()
	}
	return batch
}

// MarkDelivered records that the given requests were ordered and executed:
// their dedupe slots are released, the per-client executed watermark rises,
// and any pending copies (queued locally but ordered via another replica's
// proposal) are purged so they are never proposed again.
func (b *Batcher) MarkDelivered(reqs []Request) {
	if len(reqs) == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	delivered := make(map[dedupeKey]bool, len(reqs))
	for i := range reqs {
		k := dedupeKey{reqs[i].ClientID, reqs[i].Seq}
		delivered[k] = true
		delete(b.inFlight, k)
		delete(b.handed, k)
		if reqs[i].Seq > b.lastExec[reqs[i].ClientID] {
			b.lastExec[reqs[i].ClientID] = reqs[i].Seq
		}
	}
	kept := b.pending[:0]
	for _, p := range b.pending {
		if !delivered[dedupeKey{p.ClientID, p.Seq}] {
			kept = append(kept, p)
		}
	}
	for i := len(kept); i < len(b.pending); i++ {
		b.pending[i] = Request{}
	}
	b.pending = kept
}

// Requeue returns requests to the front of the pending queue. Used when a
// proposed batch was not decided (leader change decided a different value):
// the requests are still valid and must eventually be ordered (liveness).
// Requests already executed are dropped.
func (b *Batcher) Requeue(reqs []Request) {
	if len(reqs) == 0 {
		return
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	merged := make([]Request, 0, len(reqs)+len(b.pending))
	for i := range reqs {
		delete(b.handed, dedupeKey{reqs[i].ClientID, reqs[i].Seq})
		if reqs[i].Seq > b.lastExec[reqs[i].ClientID] {
			merged = append(merged, reqs[i])
		}
	}
	merged = append(merged, b.pending...)
	b.pending = merged
	if len(b.pending) > 0 {
		b.cond.Signal()
	}
	b.mu.Unlock()
	b.signalReady()
}

// Pending returns the number of queued requests.
func (b *Batcher) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.pending)
}

// Outstanding returns the number of requests handed out in batches and not
// yet delivered or requeued — with a pipelined driver, the requests inside
// the up-to-W concurrently ordered batches.
func (b *Batcher) Outstanding() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.handed)
}

// Fresh reports, for each request of an ordered batch, whether it executes
// for the first time: its sequence number is above the client's executed
// watermark, accounting for duplicates earlier in the same batch. The
// commit path calls it BEFORE MarkDelivered raises the watermark. The
// result is deterministic across replicas because the watermark is a pure
// function of the committed chain prefix (plus the restored checkpoint):
// with a pipelined window a request can be ordered twice — once in a
// leader-change re-proposal and once in a fresh slot — and every replica
// must skip the same second execution.
func (b *Batcher) Fresh(reqs []Request) []bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]bool, len(reqs))
	seen := make(map[int64]uint64, 8)
	for i := range reqs {
		c, s := reqs[i].ClientID, reqs[i].Seq
		hi, ok := seen[c]
		if !ok {
			hi = b.lastExec[c]
		}
		if s > hi {
			out[i] = true
			seen[c] = s
		}
	}
	return out
}

// Watermarks snapshots the per-client executed watermark for a checkpoint.
func (b *Batcher) Watermarks() map[int64]uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[int64]uint64, len(b.lastExec))
	for c, s := range b.lastExec {
		out[c] = s
	}
	return out
}

// RestoreWatermarks replaces the executed watermark when installing a
// checkpoint: replay after the snapshot must judge freshness exactly as the
// replicas that executed those blocks live did.
func (b *Batcher) RestoreWatermarks(w map[int64]uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lastExec = make(map[int64]uint64, len(w))
	for c, s := range w {
		b.lastExec[c] = s
	}
}

// Close unblocks Next and rejects further adds.
func (b *Batcher) Close() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
	b.signalReady()
}
