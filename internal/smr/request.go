// Package smr implements the state-machine-replication layer that sits
// between the consensus protocol and the replicated service (paper §II-B,
// §II-C2): client request framing, batching, the sequential/parallel
// signature-verification strategies of Table I, and the Dura-SMaRt
// durability layer with multi-batch group commit.
package smr

import (
	"errors"
	"fmt"

	"smartchain/internal/codec"
	"smartchain/internal/crypto"
)

// ContextRequest is the signature domain for client requests.
const ContextRequest = "smartchain/request/v1"

// Errors for request validation.
var (
	ErrBadRequestSig = errors.New("smr: invalid request signature")
	ErrMalformed     = errors.New("smr: malformed message")
)

// Request is one signed client operation. The client's public key travels
// with the request (as in UTXO systems, the key *is* the identity) so any
// replica can verify it without a registration step.
type Request struct {
	ClientID int64
	Seq      uint64
	Op       []byte
	PubKey   crypto.PublicKey
	Sig      []byte
}

// signedPortion returns the bytes covered by the request signature.
func (r *Request) signedPortion() []byte {
	e := codec.NewEncoder(16 + len(r.Op) + len(r.PubKey))
	e.Int64(r.ClientID)
	e.Uint64(r.Seq)
	e.WriteBytes(r.Op)
	e.WriteBytes(r.PubKey)
	return e.Bytes()
}

// NewSignedRequest builds and signs a request with the client key pair.
func NewSignedRequest(clientID int64, seq uint64, op []byte, key *crypto.KeyPair) (Request, error) {
	r := Request{ClientID: clientID, Seq: seq, Op: op, PubKey: key.Public()}
	sig, err := key.Sign(ContextRequest, r.signedPortion())
	if err != nil {
		return Request{}, fmt.Errorf("sign request: %w", err)
	}
	r.Sig = sig
	return r, nil
}

// VerifySig checks the request's signature against its embedded public key.
func (r *Request) VerifySig() error {
	if !crypto.Verify(r.PubKey, ContextRequest, r.signedPortion(), r.Sig) {
		return ErrBadRequestSig
	}
	return nil
}

// Digest returns the hash identifying this request (includes the signature,
// so two differently-signed copies are distinct).
func (r *Request) Digest() crypto.Hash {
	return crypto.HashBytes(r.signedPortion(), r.Sig)
}

// EncodeInto serializes the request into e.
func (r *Request) EncodeInto(e *codec.Encoder) {
	e.Int64(r.ClientID)
	e.Uint64(r.Seq)
	e.WriteBytes(r.Op)
	e.WriteBytes(r.PubKey)
	e.WriteBytes(r.Sig)
}

// Encode serializes the request to a fresh buffer.
func (r *Request) Encode() []byte {
	e := codec.NewEncoder(32 + len(r.Op) + len(r.PubKey) + len(r.Sig))
	r.EncodeInto(e)
	return e.Bytes()
}

// DecodeRequestFrom reads a request from d.
func DecodeRequestFrom(d *codec.Decoder) Request {
	var r Request
	r.ClientID = d.Int64()
	r.Seq = d.Uint64()
	r.Op = d.ReadBytesCopy()
	r.PubKey = crypto.PublicKey(d.ReadBytesCopy())
	r.Sig = d.ReadBytesCopy()
	return r
}

// DecodeRequest parses a standalone encoded request.
func DecodeRequest(data []byte) (Request, error) {
	d := codec.NewDecoder(data)
	r := DecodeRequestFrom(d)
	if err := d.Finish(); err != nil {
		return Request{}, fmt.Errorf("decode request: %w", err)
	}
	return r, nil
}

// Batch is the unit of ordering: the set of requests decided by one
// consensus instance, which becomes the transaction list of one block.
type Batch struct {
	Requests []Request
}

// Encode serializes the batch deterministically. The hash of these bytes is
// what consensus votes on.
func (b *Batch) Encode() []byte {
	e := codec.NewEncoder(64 * (len(b.Requests) + 1))
	e.Uint32(uint32(len(b.Requests)))
	for i := range b.Requests {
		b.Requests[i].EncodeInto(e)
	}
	return e.Bytes()
}

// DecodeBatch parses an encoded batch.
func DecodeBatch(data []byte) (Batch, error) {
	d := codec.NewDecoder(data)
	n := d.Uint32()
	if d.Err() != nil {
		return Batch{}, fmt.Errorf("decode batch: %w", d.Err())
	}
	if int(n) > len(data)/8+1 {
		return Batch{}, fmt.Errorf("decode batch: %w: implausible count %d", ErrMalformed, n)
	}
	b := Batch{Requests: make([]Request, 0, n)}
	for i := uint32(0); i < n; i++ {
		b.Requests = append(b.Requests, DecodeRequestFrom(d))
	}
	if err := d.Finish(); err != nil {
		return Batch{}, fmt.Errorf("decode batch: %w", err)
	}
	return b, nil
}

// Digest hashes the encoded batch.
func (b *Batch) Digest() crypto.Hash {
	return crypto.HashBytes(b.Encode())
}

// Reply is a replica's response to one request, signed so clients can count
// matching replies toward a Byzantine quorum.
type Reply struct {
	ReplicaID int32
	ClientID  int64
	Seq       uint64
	Result    []byte
}

// Encode serializes the reply.
func (r *Reply) Encode() []byte {
	e := codec.NewEncoder(24 + len(r.Result))
	e.Int32(r.ReplicaID)
	e.Int64(r.ClientID)
	e.Uint64(r.Seq)
	e.WriteBytes(r.Result)
	return e.Bytes()
}

// DecodeReply parses an encoded reply.
func DecodeReply(data []byte) (Reply, error) {
	d := codec.NewDecoder(data)
	var r Reply
	r.ReplicaID = d.Int32()
	r.ClientID = d.Int64()
	r.Seq = d.Uint64()
	r.Result = d.ReadBytesCopy()
	if err := d.Finish(); err != nil {
		return Reply{}, fmt.Errorf("decode reply: %w", err)
	}
	return r, nil
}
