// Package smr implements the state-machine-replication layer that sits
// between the consensus protocol and the replicated service (paper §II-B,
// §II-C2): client request framing, batching, the sequential/parallel
// signature-verification strategies of Table I, and the Dura-SMaRt
// durability layer with multi-batch group commit.
package smr

import (
	"errors"
	"fmt"
	"time"

	"smartchain/internal/codec"
	"smartchain/internal/crypto"
)

// ContextRequest is the signature domain for client requests.
const ContextRequest = "smartchain/request/v1"

// ContextReplyTag is the signature domain for reply view tags.
const ContextReplyTag = "smartchain/replytag/v1"

// Wire message types of the client⇄replica request/reply contract. This is
// the single authoritative definition: the client proxy, the SMARTCHAIN
// node, and the baseline replicas all speak these values (they used to be
// copy-pasted per package, which could drift).
const (
	// MsgRequest carries an encoded Request, client → replicas.
	MsgRequest uint16 = 200
	// MsgReply carries an encoded Reply, replica → client.
	MsgReply uint16 = 201
	// MsgViewQuery asks a replica for the currently installed view
	// (client → replica, empty payload). Clients send it when a quorum of
	// reply view tags disagrees with their local membership — the
	// self-healing view discovery of BFT-SMaRt's client proxy.
	MsgViewQuery uint16 = 202
	// MsgViewInfo answers a view query with an encoded ViewInfo
	// (replica → client).
	MsgViewInfo uint16 = 203
)

// Request flag bits (part of the signed portion, so a Byzantine relay
// cannot re-route a request between the ordered and unordered paths).
const (
	// FlagUnordered marks a read-only request served directly from replica
	// state, skipping consensus (paper §II-B: BFT-SMaRt's unordered
	// invocations).
	FlagUnordered uint8 = 1 << 0
)

// UnorderedSeqBit partitions the per-client sequence space: unordered
// requests set the top bit so their sequence numbers can never collide with
// — or perforate — the ordered execution watermark replicas keep per
// client.
const UnorderedSeqBit uint64 = 1 << 63

// Errors for request validation.
var (
	ErrBadRequestSig = errors.New("smr: invalid request signature")
	ErrMalformed     = errors.New("smr: malformed message")
)

// Request is one signed client operation. The client's public key travels
// with the request (as in UTXO systems, the key *is* the identity) so any
// replica can verify it without a registration step.
type Request struct {
	ClientID int64
	Seq      uint64
	Flags    uint8
	// ReadFloor is the session consistency floor of an unordered (read-only)
	// request: the client's highest reply-observed executed block height. A
	// replica whose executed height is below the floor parks the read until
	// it catches up instead of answering from a state that predates the
	// client's own writes — upgrading unordered reads from quorum-freshness
	// to read-your-writes (cf. BFT-SMaRt's hierarchical reads). Zero means
	// "any state" (the classic quorum-fresh read); ordered requests ignore
	// it. Part of the signed portion, so a relay cannot strip the floor.
	ReadFloor int64
	Op        []byte
	PubKey    crypto.PublicKey
	Sig       []byte

	// ident memoizes Ident() (0 = not yet computed; a genuinely zero
	// fingerprint merely recomputes). Never encoded.
	ident int64
}

// Unordered reports whether the request takes the consensus-free read path.
func (r *Request) Unordered() bool { return r.Flags&FlagUnordered != 0 }

// signedPortion returns the bytes covered by the request signature.
func (r *Request) signedPortion() []byte {
	e := codec.NewEncoder(25 + len(r.Op) + len(r.PubKey))
	e.Int64(r.ClientID)
	e.Uint64(r.Seq)
	e.Byte(r.Flags)
	e.Int64(r.ReadFloor)
	e.WriteBytes(r.Op)
	e.WriteBytes(r.PubKey)
	return e.Bytes()
}

// NewSignedRequest builds and signs an ordered request with the client key
// pair.
func NewSignedRequest(clientID int64, seq uint64, op []byte, key *crypto.KeyPair) (Request, error) {
	return newSigned(clientID, seq, 0, 0, op, key)
}

// NewSignedUnordered builds and signs an unordered (read-only) request with
// the given session read floor (0 = quorum-fresh). seq must come from the
// unordered sequence space (UnorderedSeqBit set) so it cannot shadow an
// ordered sequence number.
func NewSignedUnordered(clientID int64, seq uint64, floor int64, op []byte, key *crypto.KeyPair) (Request, error) {
	return newSigned(clientID, seq|UnorderedSeqBit, FlagUnordered, floor, op, key)
}

func newSigned(clientID int64, seq uint64, flags uint8, floor int64, op []byte, key *crypto.KeyPair) (Request, error) {
	r := Request{ClientID: clientID, Seq: seq, Flags: flags, ReadFloor: floor, Op: op, PubKey: key.Public()}
	sig, err := key.Sign(ContextRequest, r.signedPortion())
	if err != nil {
		return Request{}, fmt.Errorf("sign request: %w", err)
	}
	r.Sig = sig
	return r, nil
}

// VerifySig checks the request's signature against its embedded public key.
func (r *Request) VerifySig() error {
	if !crypto.Verify(r.PubKey, ContextRequest, r.signedPortion(), r.Sig) {
		return ErrBadRequestSig
	}
	return nil
}

// Digest returns the hash identifying this request (includes the signature,
// so two differently-signed copies are distinct).
func (r *Request) Digest() crypto.Hash {
	return crypto.HashBytes(r.signedPortion(), r.Sig)
}

// Ident returns the sender's 64-bit dedupe identity: a fingerprint of
// (ClientID, PubKey). Replicas key their executed-sequence records by it
// rather than by ClientID alone — the key IS the identity, the ClientID is
// only a reply-routing address — so a third party signing requests under
// someone else's ClientID occupies its own sequence space and cannot
// pre-burn or poison the victim's.
func (r *Request) Ident() int64 {
	if r.ident != 0 {
		return r.ident
	}
	e := codec.NewEncoder(16 + len(r.PubKey))
	e.Int64(r.ClientID)
	e.WriteBytes(r.PubKey)
	h := crypto.HashBytes(e.Bytes())
	r.ident = int64(uint64(h[0]) | uint64(h[1])<<8 | uint64(h[2])<<16 | uint64(h[3])<<24 |
		uint64(h[4])<<32 | uint64(h[5])<<40 | uint64(h[6])<<48 | uint64(h[7])<<56)
	return r.ident
}

// Orderable reports whether the request may legitimately appear in an
// ordered batch: unordered (read-only) requests — by flag or by sequence
// space — must never be ordered. A Byzantine leader batching a victim's
// signed unordered request would otherwise inject its huge UnorderedSeqBit
// sequence number into the victim's executed record, whose staleness
// closure would then censor all the victim's future ordered requests.
func (r *Request) Orderable() bool {
	return !r.Unordered() && r.Seq&UnorderedSeqBit == 0
}

// ValidBatchValue is the proposal-validity predicate shared by the
// consensus Validate hooks (SMARTCHAIN node and baseline chassis): the
// value must decode as a batch and carry only orderable requests, so a
// batch smuggling an unordered request can never gather an honest vote
// quorum.
func ValidBatchValue(value []byte) bool {
	b, err := DecodeBatch(value)
	if err != nil {
		return false
	}
	for i := range b.Requests {
		if !b.Requests[i].Orderable() {
			return false
		}
	}
	return true
}

// EncodeInto serializes the request into e.
func (r *Request) EncodeInto(e *codec.Encoder) {
	e.Int64(r.ClientID)
	e.Uint64(r.Seq)
	e.Byte(r.Flags)
	e.Int64(r.ReadFloor)
	e.WriteBytes(r.Op)
	e.WriteBytes(r.PubKey)
	e.WriteBytes(r.Sig)
}

// Encode serializes the request to a fresh buffer.
func (r *Request) Encode() []byte {
	e := codec.NewEncoder(32 + len(r.Op) + len(r.PubKey) + len(r.Sig))
	r.EncodeInto(e)
	return e.Bytes()
}

// DecodeRequestFrom reads a request from d.
func DecodeRequestFrom(d *codec.Decoder) Request {
	var r Request
	r.ClientID = d.Int64()
	r.Seq = d.Uint64()
	r.Flags = d.Byte()
	r.ReadFloor = d.Int64()
	r.Op = d.ReadBytesCopy()
	r.PubKey = crypto.PublicKey(d.ReadBytesCopy())
	r.Sig = d.ReadBytesCopy()
	return r
}

// DecodeRequest parses a standalone encoded request.
func DecodeRequest(data []byte) (Request, error) {
	d := codec.NewDecoder(data)
	r := DecodeRequestFrom(d)
	if err := d.Finish(); err != nil {
		return Request{}, fmt.Errorf("decode request: %w", err)
	}
	return r, nil
}

// Batch is the unit of ordering: the set of requests decided by one
// consensus instance, which becomes the transaction list of one block.
//
// Timestamp is the proposing leader's wall clock (unix nanoseconds) at
// batch assembly. Because it travels inside the decided value, every
// replica observes the identical timestamp, so applications may use it
// deterministically (it is NOT trusted time: a Byzantine leader can skew
// it within whatever bounds the application enforces).
type Batch struct {
	Timestamp int64
	Requests  []Request
}

// Encode serializes the batch deterministically. The hash of these bytes is
// what consensus votes on.
func (b *Batch) Encode() []byte {
	e := codec.NewEncoder(64 * (len(b.Requests) + 1))
	e.Int64(b.Timestamp)
	e.Uint32(uint32(len(b.Requests)))
	for i := range b.Requests {
		b.Requests[i].EncodeInto(e)
	}
	return e.Bytes()
}

// DecodeBatch parses an encoded batch.
func DecodeBatch(data []byte) (Batch, error) {
	d := codec.NewDecoder(data)
	ts := d.Int64()
	n := d.Uint32()
	if d.Err() != nil {
		return Batch{}, fmt.Errorf("decode batch: %w", d.Err())
	}
	if int(n) > len(data)/8+1 {
		return Batch{}, fmt.Errorf("decode batch: %w: implausible count %d", ErrMalformed, n)
	}
	b := Batch{Timestamp: ts, Requests: make([]Request, 0, n)}
	for i := uint32(0); i < n; i++ {
		b.Requests = append(b.Requests, DecodeRequestFrom(d))
	}
	if err := d.Finish(); err != nil {
		return Batch{}, fmt.Errorf("decode batch: %w", err)
	}
	return b, nil
}

// Digest hashes the encoded batch.
func (b *Batch) Digest() crypto.Hash {
	return crypto.HashBytes(b.Encode())
}

// BatchContext is the ordering context handed to the application alongside
// each executed batch (the analogue of BFT-SMaRt's MessageContext): which
// block the batch lands in, which consensus instance and epoch decided it,
// and the decided (leader-assigned, replica-identical) batch timestamp.
type BatchContext struct {
	// BlockNumber is the chain height the batch's block occupies.
	BlockNumber int64
	// Instance is the consensus instance that decided the batch.
	Instance int64
	// Epoch is the consensus epoch (regency) the decision was reached in.
	Epoch int64
	// Timestamp is the decided batch timestamp — identical on every
	// replica, so it is safe to derive replicated state from it.
	Timestamp time.Time
}

// NewBatchContext assembles the context for one decided batch.
func NewBatchContext(blockNumber, instance, epoch int64, b *Batch) BatchContext {
	return BatchContext{
		BlockNumber: blockNumber,
		Instance:    instance,
		Epoch:       epoch,
		Timestamp:   time.Unix(0, b.Timestamp),
	}
}

// Reply flag bits.
const (
	// ReplyFlagBehind marks a read-floor miss: the replica's executed height
	// stayed below the request's ReadFloor for the whole park window (or the
	// park queue was full), so no result is carried. A client collecting a
	// quorum of behind replies falls back to an ordered read.
	ReplyFlagBehind uint8 = 1 << 0
)

// ViewTag is the view metadata piggybacked on every reply (BFT-SMaRt §II-B:
// clients track the replicated group's configuration through reply
// metadata, not manual administration). The client proxy compares each
// tag's membership hash against its own and, on a quorum of mismatches,
// fetches the new membership via MsgViewQuery and re-targets its in-flight
// calls.
type ViewTag struct {
	// ViewID is the replica's installed view number.
	ViewID int64
	// Epoch is the consensus regency the replica operates in (for ordered
	// replies: the epoch that decided the batch, identical on all replicas).
	Epoch int64
	// MemberHash is MembershipHash(ViewID, members) of the installed view.
	MemberHash crypto.Hash
	// Height is the replica's executed block height as of the reply (for
	// ordered replies: the block that carried the request). Clients fold it
	// into their session read floor for read-your-writes unordered reads.
	Height int64
}

// signedPortion binds the tag to its issuing replica. The signature is a
// statement about the replica's view state, deliberately NOT bound to one
// reply: it changes only when the view, epoch, or height moves, so replicas
// sign once per block instead of once per reply. Replaying a replica's own
// tag onto another of its replies asserts nothing new; what tampering must
// not survive is a relay rewriting the membership hash or height.
func (t *ViewTag) signedPortion(replica int32) []byte {
	e := codec.NewEncoder(64)
	e.Int32(replica)
	e.Int64(t.ViewID)
	e.Int64(t.Epoch)
	e.Bytes32(t.MemberHash)
	e.Int64(t.Height)
	return e.Bytes()
}

// Sign produces the replica's signature over the tag.
func (t *ViewTag) Sign(replica int32, key *crypto.KeyPair) ([]byte, error) {
	return key.Sign(ContextReplyTag, t.signedPortion(replica))
}

// Verify checks a tag signature against the replica's public key.
func (t *ViewTag) Verify(replica int32, pub crypto.PublicKey, sig []byte) error {
	if !crypto.Verify(pub, ContextReplyTag, t.signedPortion(replica), sig) {
		return ErrBadRequestSig
	}
	return nil
}

// Reply is a replica's response to one request. Digest echoes the hash of
// the request being answered (covering its signature): a client matches
// replies against the digest of the request IT signed, so a third party
// cannot have replicas answer a victim's in-flight (ClientID, Seq) with
// the result of an attacker-signed request — ClientID alone is a routing
// address, not an identity. Tag carries the replica's signed view metadata;
// a zero tag with empty TagSig marks a sender that does not implement view
// piggybacking (the baseline replicas).
type Reply struct {
	ReplicaID int32
	ClientID  int64
	Seq       uint64
	Digest    crypto.Hash
	Flags     uint8
	Tag       ViewTag
	TagSig    []byte
	Result    []byte
}

// Encode serializes the reply.
func (r *Reply) Encode() []byte {
	e := codec.NewEncoder(128 + len(r.Result) + len(r.TagSig))
	e.Int32(r.ReplicaID)
	e.Int64(r.ClientID)
	e.Uint64(r.Seq)
	e.Bytes32(r.Digest)
	e.Byte(r.Flags)
	e.Int64(r.Tag.ViewID)
	e.Int64(r.Tag.Epoch)
	e.Bytes32(r.Tag.MemberHash)
	e.Int64(r.Tag.Height)
	e.WriteBytes(r.TagSig)
	e.WriteBytes(r.Result)
	return e.Bytes()
}

// DecodeReply parses an encoded reply.
func DecodeReply(data []byte) (Reply, error) {
	d := codec.NewDecoder(data)
	var r Reply
	r.ReplicaID = d.Int32()
	r.ClientID = d.Int64()
	r.Seq = d.Uint64()
	r.Digest = d.Bytes32()
	r.Flags = d.Byte()
	r.Tag.ViewID = d.Int64()
	r.Tag.Epoch = d.Int64()
	r.Tag.MemberHash = d.Bytes32()
	r.Tag.Height = d.Int64()
	r.TagSig = d.ReadBytesCopy()
	r.Result = d.ReadBytesCopy()
	if err := d.Finish(); err != nil {
		return Reply{}, fmt.Errorf("decode reply: %w", err)
	}
	return r, nil
}

// ViewInfo answers a MsgViewQuery: the responder's installed view. Clients
// adopt a newer view once f+1 members of their current view report the
// same (ViewID, Members) — at least one of them is correct, and correct
// members report their installed view faithfully — so the message itself
// needs no signature.
type ViewInfo struct {
	ViewID  int64
	Members []int32
}

// Encode serializes the view info.
func (v *ViewInfo) Encode() []byte {
	e := codec.NewEncoder(16 + 4*len(v.Members))
	e.Int64(v.ViewID)
	e.Uint32(uint32(len(v.Members)))
	for _, m := range v.Members {
		e.Int32(m)
	}
	return e.Bytes()
}

// DecodeViewInfo parses an encoded view info.
func DecodeViewInfo(data []byte) (ViewInfo, error) {
	d := codec.NewDecoder(data)
	var v ViewInfo
	v.ViewID = d.Int64()
	n := d.Uint32()
	// Bound the pre-allocation by what the payload can actually hold, so a
	// tiny message with a huge count field cannot force large allocations.
	if d.Err() != nil || n > 1<<16 || int(n) > len(data)/4 {
		return ViewInfo{}, fmt.Errorf("decode view info: %w", ErrMalformed)
	}
	v.Members = make([]int32, 0, n)
	for i := uint32(0); i < n; i++ {
		v.Members = append(v.Members, d.Int32())
	}
	if err := d.Finish(); err != nil {
		return ViewInfo{}, fmt.Errorf("decode view info: %w", err)
	}
	return v, nil
}
