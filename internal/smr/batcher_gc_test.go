package smr

import (
	"testing"

	"smartchain/internal/crypto"
)

func gcReq(t *testing.T, key *crypto.KeyPair, client int64, seq uint64) Request {
	t.Helper()
	r, err := NewSignedRequest(client, seq, []byte{1}, key)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	return r
}

// TestSessionGCEvictsIdleClients checks the per-client executed records are
// evicted once idle past the horizon, measured in committed block heights —
// and that active clients survive.
func TestSessionGCEvictsIdleClients(t *testing.T) {
	b := NewBatcher(8)
	b.SetSessionGC(4)
	idle := crypto.SeededKeyPair("gc-idle", 1)
	busy := crypto.SeededKeyPair("gc-busy", 2)

	b.MarkDeliveredAt(1, []Request{gcReq(t, idle, 1, 1)})
	for h := int64(2); h <= 5; h++ {
		b.MarkDeliveredAt(h, []Request{gcReq(t, busy, 2, uint64(h))})
	}
	if len(b.Watermarks()) != 2 {
		t.Fatalf("premature eviction: %v", b.Watermarks())
	}
	// Height 6: idle's lastSeen=1 is now 5 > 4 blocks behind.
	b.MarkDeliveredAt(6, []Request{gcReq(t, busy, 2, 6)})
	w := b.Watermarks()
	if len(w) != 1 {
		t.Fatalf("idle client not evicted: %v", w)
	}
	busyReq := gcReq(t, busy, 2, 6)
	if _, ok := w[busyReq.Ident()]; !ok {
		t.Fatalf("busy client evicted instead: %v", w)
	}
	// The evicted client's old sequence numbers are accepted again: the
	// horizon is the replay-window-vs-memory trade.
	if !b.Add(gcReq(t, idle, 1, 1)) {
		t.Fatal("evicted client's request rejected")
	}
}

// TestSessionGCDisabledKeepsRecords pins the default: horizon 0 never
// evicts.
func TestSessionGCDisabledKeepsRecords(t *testing.T) {
	b := NewBatcher(8)
	idle := crypto.SeededKeyPair("gc-none", 1)
	busy := crypto.SeededKeyPair("gc-none", 2)
	b.MarkDeliveredAt(1, []Request{gcReq(t, idle, 1, 1)})
	for h := int64(2); h <= 100; h++ {
		b.MarkDeliveredAt(h, []Request{gcReq(t, busy, 2, uint64(h))})
	}
	if len(b.Watermarks()) != 2 {
		t.Fatalf("record evicted with GC disabled: %v", b.Watermarks())
	}
	if b.Add(gcReq(t, idle, 1, 1)) {
		t.Fatal("replay accepted with GC disabled")
	}
}

// TestSessionGCLastSeenRoundTripsThroughWatermarks checks that restoring
// from a checkpoint carries the idleness clock, so a restored replica
// evicts at exactly the same height as one that executed the blocks live.
func TestSessionGCLastSeenRoundTripsThroughWatermarks(t *testing.T) {
	b := NewBatcher(8)
	b.SetSessionGC(4)
	idle := crypto.SeededKeyPair("gc-rt", 1)
	busy := crypto.SeededKeyPair("gc-rt", 2)
	b.MarkDeliveredAt(1, []Request{gcReq(t, idle, 1, 1)})
	b.MarkDeliveredAt(5, []Request{gcReq(t, busy, 2, 5)})

	w := b.Watermarks()
	idleReq := gcReq(t, idle, 1, 1)
	if got := w[idleReq.Ident()].LastSeen; got != 1 {
		t.Fatalf("idle LastSeen = %d, want 1", got)
	}

	restored := NewBatcher(8)
	restored.SetSessionGC(4)
	restored.RestoreWatermarks(w)
	// The next committed block at height 6 evicts idle on BOTH batchers.
	b.MarkDeliveredAt(6, []Request{gcReq(t, busy, 2, 6)})
	restored.MarkDeliveredAt(6, []Request{gcReq(t, busy, 2, 6)})
	lw, rw := b.Watermarks(), restored.Watermarks()
	if len(lw) != 1 || len(rw) != 1 {
		t.Fatalf("divergent eviction: live=%v restored=%v", lw, rw)
	}
}

// TestMarkDeliveredWithoutHeightNeverEvicts pins the baselines' plain
// MarkDelivered path: no height, no lastSeen advance, no eviction.
func TestMarkDeliveredWithoutHeightNeverEvicts(t *testing.T) {
	b := NewBatcher(8)
	b.SetSessionGC(1)
	key := crypto.SeededKeyPair("gc-legacy", 1)
	for s := uint64(1); s <= 50; s++ {
		b.MarkDelivered([]Request{gcReq(t, key, 1, s)})
	}
	if len(b.Watermarks()) != 1 {
		t.Fatalf("legacy path evicted: %v", b.Watermarks())
	}
}
