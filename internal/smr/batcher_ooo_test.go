package smr

import (
	"testing"

	"smartchain/internal/crypto"
)

func oooReq(t *testing.T, key *crypto.KeyPair, client int64, seq uint64) Request {
	t.Helper()
	r, err := NewSignedRequest(client, seq, []byte{byte(seq)}, key)
	if err != nil {
		t.Fatalf("sign: %v", err)
	}
	return r
}

// TestBatcherOutOfOrderDelivery is the asynchronous-client scenario: one
// client has seq 5 and 6 in flight at once and instance order commits 6
// first. Seq 5 must stay fresh — a plain high watermark would drop it.
func TestBatcherOutOfOrderDelivery(t *testing.T) {
	key := crypto.SeededKeyPair("ooo", 1)
	b := NewBatcher(16)
	r5 := oooReq(t, key, 7, 5)
	r6 := oooReq(t, key, 7, 6)

	b.MarkDelivered([]Request{r6}) // instance carrying seq 6 commits first

	if fresh := b.Fresh([]Request{r5}); !fresh[0] {
		t.Fatal("seq 5 judged stale after seq 6 executed")
	}
	if fresh := b.Fresh([]Request{r6}); fresh[0] {
		t.Fatal("seq 6 judged fresh after executing")
	}
	if !b.Add(r5) {
		t.Fatal("retransmitted seq 5 rejected after seq 6 executed")
	}
	if b.Add(r6) {
		t.Fatal("executed seq 6 re-admitted")
	}

	b.MarkDelivered([]Request{r5})
	if fresh := b.Fresh([]Request{r5}); fresh[0] {
		t.Fatal("seq 5 still fresh after executing")
	}
}

// TestBatcherWatermarkRoundTripWithHoles: checkpoint serialization must
// preserve the out-of-order executed set exactly, or replay diverges.
func TestBatcherWatermarkRoundTripWithHoles(t *testing.T) {
	key := crypto.SeededKeyPair("ooo", 2)
	b := NewBatcher(16)
	// Execute 1, 2, 4, 6 — holes at 3 and 5.
	for _, s := range []uint64{1, 2, 4, 6} {
		b.MarkDelivered([]Request{oooReq(t, key, 9, s)})
	}

	// Records are keyed by the sender identity fingerprint, not ClientID.
	identReq := oooReq(t, key, 9, 1)
	ident := identReq.Ident()
	w := b.Watermarks()
	if got := w[ident]; got.Low != 2 || len(got.Executed) != 2 || got.Executed[0] != 4 || got.Executed[1] != 6 {
		t.Fatalf("watermark: %+v", got)
	}

	b2 := NewBatcher(16)
	b2.RestoreWatermarks(w)
	for _, tc := range []struct {
		seq   uint64
		fresh bool
	}{{1, false}, {2, false}, {3, true}, {4, false}, {5, true}, {6, false}, {7, true}} {
		if got := b2.Fresh([]Request{oooReq(t, key, 9, tc.seq)})[0]; got != tc.fresh {
			t.Fatalf("restored freshness of seq %d: got %v want %v", tc.seq, got, tc.fresh)
		}
	}

	// Filling hole 3 slides the contiguous watermark to 4.
	b2.MarkDelivered([]Request{oooReq(t, key, 9, 3)})
	if w2 := b2.Watermarks()[ident]; w2.Low != 4 || len(w2.Executed) != 1 || w2.Executed[0] != 6 {
		t.Fatalf("after filling hole: %+v", w2)
	}
}

// TestBatcherStaleWindowCloses: a hole abandoned far enough behind the
// newest executed seq is deterministically declared stale, bounding the
// sparse set.
func TestBatcherStaleWindowCloses(t *testing.T) {
	key := crypto.SeededKeyPair("ooo", 3)
	b := NewBatcher(16)
	b.MarkDelivered([]Request{oooReq(t, key, 3, 1)})
	// Skip seq 2 (abandoned forever), then jump past the window span.
	far := uint64(2 + seqWindowSpan)
	b.MarkDelivered([]Request{oooReq(t, key, 3, far)})
	if fresh := b.Fresh([]Request{oooReq(t, key, 3, 2)}); fresh[0] {
		t.Fatal("hole older than the window span still fresh")
	}
	idReq := oooReq(t, key, 3, 1)
	if w := b.Watermarks()[idReq.Ident()]; w.Low != far-seqWindowSpan {
		t.Fatalf("low: got %d want %d", w.Low, far-seqWindowSpan)
	}
}

// TestBatcherFreshInBatchDuplicate: the same (client, seq) twice inside one
// decided batch executes once.
func TestBatcherFreshInBatchDuplicate(t *testing.T) {
	key := crypto.SeededKeyPair("ooo", 4)
	b := NewBatcher(16)
	r := oooReq(t, key, 5, 1)
	fresh := b.Fresh([]Request{r, r})
	if !fresh[0] || fresh[1] {
		t.Fatalf("in-batch duplicate: %v", fresh)
	}
}

// TestBatcherForeignKeyCannotPoisonSeqSpace: executed records are keyed by
// the (ClientID, PubKey) fingerprint, so an attacker signing requests with
// its OWN key but a victim's ClientID and future seqs (even one aimed at
// the staleness closure) burns only its own sequence space.
func TestBatcherForeignKeyCannotPoisonSeqSpace(t *testing.T) {
	victim := crypto.SeededKeyPair("ooo", 5)
	attacker := crypto.SeededKeyPair("ooo", 6)
	b := NewBatcher(16)
	b.MarkDelivered([]Request{oooReq(t, attacker, 7, 5), oooReq(t, attacker, 7, 1<<40)})
	if fresh := b.Fresh([]Request{oooReq(t, victim, 7, 5)}); !fresh[0] {
		t.Fatal("attacker-signed requests poisoned the victim's sequence space")
	}
	if !b.Add(oooReq(t, victim, 7, 5)) {
		t.Fatal("victim's request rejected after attacker pre-burn")
	}
}

// TestBatcherImmuneToOrderedUnorderedRequests: a Byzantine leader batching
// a victim's signed UNORDERED request (huge UnorderedSeqBit seq) must not
// poison the victim's ordered executed record via the staleness closure —
// and such a value must fail proposal validation outright.
func TestBatcherImmuneToOrderedUnorderedRequests(t *testing.T) {
	key := crypto.SeededKeyPair("ooo", 7)
	read, err := NewSignedUnordered(11, 1, 0, []byte("q"), key)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(16)
	if b.Add(read) {
		t.Fatal("unordered request admitted to the ordering queue")
	}
	// Even if a hostile decided value reaches the commit path, the record
	// must stay untouched and the request must never execute as fresh.
	if fresh := b.Fresh([]Request{read}); fresh[0] {
		t.Fatal("unordered request judged fresh on the ordered path")
	}
	b.MarkDelivered([]Request{read})
	if len(b.Watermarks()) != 0 {
		t.Fatalf("unordered request reached the executed record: %v", b.Watermarks())
	}
	ordered := oooReq(t, key, 11, 1)
	if fresh := b.Fresh([]Request{ordered}); !fresh[0] {
		t.Fatal("victim's ordered seq censored")
	}

	// Proposal validation rejects the whole value.
	bad := Batch{Requests: []Request{oooReq(t, key, 11, 2), read}}
	if ValidBatchValue(bad.Encode()) {
		t.Fatal("batch carrying an unordered request passed validation")
	}
	good := Batch{Requests: []Request{oooReq(t, key, 11, 2)}}
	if !ValidBatchValue(good.Encode()) {
		t.Fatal("clean batch rejected")
	}
}
