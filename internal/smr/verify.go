package smr

import (
	"runtime"
	"sync"

	"smartchain/internal/crypto"
)

// VerifyMode selects the transaction-signature verification strategy of
// Table I. Where verification happens determines whether it serializes with
// execution (sequential, inside the state machine) or exploits multiple
// cores (parallel, in a verification pool before ordering — BFT-SMaRt's
// "message verification pool of threads").
type VerifyMode int

const (
	// VerifyParallel verifies request signatures in a worker pool before
	// the request enters the pending queue. The default.
	VerifyParallel VerifyMode = iota + 1
	// VerifySequential verifies inside the execution path, one request at
	// a time (the naive strategy of Table I's left half).
	VerifySequential
	// VerifyNone skips signature verification (the "N"/"Sy" configurations
	// of Fig. 6).
	VerifyNone
)

// String implements fmt.Stringer for experiment labels.
func (m VerifyMode) String() string {
	switch m {
	case VerifyParallel:
		return "parallel"
	case VerifySequential:
		return "sequential"
	case VerifyNone:
		return "none"
	default:
		return "unknown"
	}
}

// VerifierPool verifies request signatures on a configurable number of
// workers. In parallel mode the pool has ~GOMAXPROCS workers; sequential
// mode is modeled as a pool of one worker, which preserves ordering
// semantics while serializing the CPU cost exactly like verifying inside
// the state machine would.
type VerifierPool struct {
	mode    VerifyMode
	workers int
	jobs    chan verifyJob
	wg      sync.WaitGroup
	stopped chan struct{}
}

type verifyJob struct {
	req Request
	out func(Request, bool)
}

// NewVerifierPool starts a pool for the given mode. workers ≤ 0 picks a
// default based on the mode. Close must be called to release the workers.
func NewVerifierPool(mode VerifyMode, workers int) *VerifierPool {
	if mode == VerifySequential {
		// Sequential mode is the serialized-CPU baseline; extra workers
		// would change what it measures.
		workers = 1
	} else if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &VerifierPool{
		mode:    mode,
		workers: workers,
		jobs:    make(chan verifyJob, workers*4),
		stopped: make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *VerifierPool) worker() {
	defer p.wg.Done()
	for job := range p.jobs {
		ok := p.mode == VerifyNone || job.req.VerifySig() == nil
		job.out(job.req, ok)
	}
}

// Submit queues req for verification; out is called with the verdict from a
// worker goroutine. Returns false if the pool is closed.
func (p *VerifierPool) Submit(req Request, out func(Request, bool)) bool {
	select {
	case <-p.stopped:
		return false
	default:
	}
	select {
	case p.jobs <- verifyJob{req: req, out: out}:
		return true
	case <-p.stopped:
		return false
	}
}

// VerifyBatch synchronously verifies all requests of a batch according to
// the mode, returning per-request verdicts. Used on the delivery path for
// batches proposed by other replicas. The checks are aggregated through a
// crypto.BatchVerifier: the all-or-nothing Verify fast path covers the
// overwhelmingly common all-honest batch, and a failed batch falls back to
// per-item VerifyEach so one rotten signature cannot discard its honest
// siblings.
func (p *VerifierPool) VerifyBatch(reqs []Request) []bool {
	verdicts := make([]bool, len(reqs))
	if p.mode == VerifyNone {
		for i := range verdicts {
			verdicts[i] = true
		}
		return verdicts
	}
	workers := p.workers
	if p.mode == VerifySequential {
		workers = 1
	}
	bv := crypto.NewBatchVerifier(len(reqs))
	for i := range reqs {
		bv.Add(reqs[i].PubKey, ContextRequest, reqs[i].signedPortion(), reqs[i].Sig)
	}
	if bv.Verify(workers) {
		for i := range verdicts {
			verdicts[i] = true
		}
		return verdicts
	}
	return bv.VerifyEach(workers)
}

// Mode returns the pool's verification mode.
func (p *VerifierPool) Mode() VerifyMode { return p.mode }

// Close stops the workers. Pending jobs are completed first.
func (p *VerifierPool) Close() {
	select {
	case <-p.stopped:
		return
	default:
	}
	close(p.stopped)
	close(p.jobs)
	p.wg.Wait()
}
