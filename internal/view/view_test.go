package view

import (
	"testing"
	"testing/quick"

	"smartchain/internal/crypto"
)

func TestFaultTolerance(t *testing.T) {
	cases := []struct{ n, f int }{
		{0, 0}, {1, 0}, {2, 0}, {3, 0},
		{4, 1}, {5, 1}, {6, 1},
		{7, 2}, {8, 2}, {9, 2},
		{10, 3}, {13, 4},
	}
	for _, c := range cases {
		if got := FaultTolerance(c.n); got != c.f {
			t.Errorf("FaultTolerance(%d) = %d, want %d", c.n, got, c.f)
		}
	}
}

func TestByzantineQuorum(t *testing.T) {
	// ⌈(n+f+1)/2⌉ values from the paper: n=4→3, n=7→5, n=10→7.
	cases := []struct{ n, f, q int }{
		{4, 1, 3},
		{7, 2, 5},
		{10, 3, 7},
		{5, 1, 4},
		{6, 1, 4},
	}
	for _, c := range cases {
		if got := ByzantineQuorum(c.n, c.f); got != c.q {
			t.Errorf("ByzantineQuorum(%d,%d) = %d, want %d", c.n, c.f, got, c.q)
		}
	}
}

func TestQuorumIntersectionProperty(t *testing.T) {
	// Safety invariant: two Byzantine quorums intersect in at least f+1
	// replicas, hence at least one correct one. Check for all n up to 100.
	for n := 1; n <= 100; n++ {
		f := FaultTolerance(n)
		q := ByzantineQuorum(n, f)
		if q > n {
			t.Fatalf("n=%d: quorum %d exceeds group size", n, q)
		}
		// |A∩B| ≥ 2q − n must exceed f.
		if 2*q-n < f+1 {
			t.Fatalf("n=%d f=%d q=%d: intersection %d < f+1", n, f, q, 2*q-n)
		}
	}
}

func TestReconfigQuorumSafetyProperty(t *testing.T) {
	// Paper §V-D: a reconfiguration records n−f fresh keys. The ≤f members
	// whose keys were omitted, colluding with ≤f faulty members whose keys
	// were included, must not reach the certificate quorum.
	for n := 4; n <= 100; n++ {
		f := FaultTolerance(n)
		certQ := ByzantineQuorum(n, f)
		// Worst case adversary: f omitted (can't sign at all in new view) do
		// not help; f faulty with included keys can sign. f < certQ always.
		if f >= certQ {
			t.Fatalf("n=%d: f=%d can forge certificate of quorum %d", n, f, certQ)
		}
		if ReconfigQuorum(n, f) != n-f {
			t.Fatalf("n=%d: reconfig quorum mismatch", n)
		}
	}
}

func testView(n int) View {
	members := make([]int32, n)
	keys := make(map[int32]crypto.PublicKey, n)
	for i := 0; i < n; i++ {
		members[i] = int32(i)
		keys[int32(i)] = crypto.SeededKeyPair("v", int64(i)).Public()
	}
	return New(1, members, keys)
}

func TestViewBasics(t *testing.T) {
	v := testView(4)
	if v.N() != 4 || v.F() != 1 {
		t.Fatalf("n/f: %d/%d", v.N(), v.F())
	}
	if v.Quorum() != 3 || v.CertQuorum() != 3 || v.JoinQuorum() != 3 {
		t.Fatalf("quorums: %d/%d/%d", v.Quorum(), v.CertQuorum(), v.JoinQuorum())
	}
	if !v.Contains(2) || v.Contains(9) {
		t.Fatal("contains")
	}
	others := v.Others(1)
	if len(others) != 3 {
		t.Fatalf("others: %v", others)
	}
	for _, o := range others {
		if o == 1 {
			t.Fatal("others must exclude self")
		}
	}
	if _, ok := v.PublicKeyOf(0); !ok {
		t.Fatal("key resolution failed")
	}
	if _, ok := v.PublicKeyOf(77); ok {
		t.Fatal("unknown member must not resolve")
	}
	if v.String() == "" {
		t.Fatal("string")
	}
}

func TestViewMembershipNormalization(t *testing.T) {
	v := New(0, []int32{3, 1, 2, 1, 3}, nil)
	want := []int32{1, 2, 3}
	if len(v.Members) != len(want) {
		t.Fatalf("members: %v", v.Members)
	}
	for i := range want {
		if v.Members[i] != want[i] {
			t.Fatalf("members: %v, want %v", v.Members, want)
		}
	}
}

func TestLeaderRotation(t *testing.T) {
	v := testView(4)
	seen := make(map[int32]bool)
	for e := int64(0); e < 8; e++ {
		l := v.Leader(e)
		if !v.Contains(l) {
			t.Fatalf("leader %d not a member", l)
		}
		seen[l] = true
		if v.Leader(e) != v.Leader(e+4) {
			t.Fatal("rotation must have period n")
		}
	}
	if len(seen) != 4 {
		t.Fatalf("rotation must cover all members, saw %d", len(seen))
	}
	empty := New(9, nil, nil)
	if empty.Leader(0) != -1 {
		t.Fatal("empty view leader must be -1")
	}
}

func TestWithKey(t *testing.T) {
	v := testView(4)
	delete(v.ConsensusKeys, 3)
	if _, ok := v.PublicKeyOf(3); ok {
		t.Fatal("precondition: key 3 absent")
	}
	nk := crypto.SeededKeyPair("new", 3).Public()
	v2 := v.WithKey(3, nk)
	if _, ok := v.PublicKeyOf(3); ok {
		t.Fatal("WithKey must not mutate the original view")
	}
	got, ok := v2.PublicKeyOf(3)
	if !ok || !got.Equal(nk) {
		t.Fatal("WithKey must set the key on the copy")
	}
	// Non-member: no-op.
	v3 := v.WithKey(42, nk)
	if _, ok := v3.PublicKeyOf(42); ok {
		t.Fatal("WithKey for non-member must be a no-op")
	}
}

func TestPropertyQuorumMonotonicity(t *testing.T) {
	f := func(raw uint8) bool {
		n := int(raw%97) + 4
		ft := FaultTolerance(n)
		q := ByzantineQuorum(n, ft)
		// 2f+1 ≤ q ≤ n and q ≥ majority.
		return q >= 2*ft+1 && q <= n && 2*q > n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
