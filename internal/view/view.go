// Package view defines the dynamic replica-group abstraction of SMARTCHAIN
// (paper §III-a). A View is one installed configuration of the consortium:
// its members, the fault threshold derived from the member count, and the
// per-view consensus public keys that validate everything signed inside the
// view (WRITE/ACCEPT proofs, block certificates, PERSIST messages).
//
// Views are immutable values; reconfiguration produces the next view rather
// than mutating the current one, which is what lets every block reference
// "the view it was created in" unambiguously.
package view

import (
	"fmt"
	"sort"

	"smartchain/internal/codec"
	"smartchain/internal/crypto"
)

// FaultTolerance returns the maximum number of Byzantine faults a group of n
// replicas tolerates: ⌊(n−1)/3⌋.
func FaultTolerance(n int) int {
	if n <= 0 {
		return 0
	}
	return (n - 1) / 3
}

// ByzantineQuorum returns ⌈(n+f+1)/2⌉, the dissemination Byzantine quorum
// used for block certificates and reply matching (paper §IV, [42]). With
// f = ⌊(n−1)/3⌋ this is ≥ 2f+1.
func ByzantineQuorum(n, f int) int {
	return (n + f + 2) / 2
}

// ConsensusQuorum returns the >2/3 threshold used by WRITE and ACCEPT
// rounds: ⌈(n+f+1)/2⌉ with the standard f, which equals 2f+1 for n = 3f+1.
func ConsensusQuorum(n, f int) int {
	return ByzantineQuorum(n, f)
}

// ReconfigQuorum returns n−f, the number of votes (and fresh consensus keys)
// collected for a reconfiguration (paper §V-D): enough for liveness under f
// unresponsive members, and enough for safety because the ≤f members whose
// keys were omitted cannot complete a ⌈(n+f+1)/2⌉ certificate even in
// collusion with f faulty current members.
func ReconfigQuorum(n, f int) int {
	return n - f
}

// View is one installed configuration of the replica group.
type View struct {
	// ID is the view number; the genesis view has ID 0, and every
	// reconfiguration increments it.
	ID int64
	// Members lists the replica IDs of the view in ascending order.
	Members []int32
	// ConsensusKeys maps each member to the consensus public key it uses in
	// this view. During the window right after a view change, keys for
	// members that were not part of the reconfiguration quorum may be
	// missing until announced (paper §V-D); such members cannot contribute
	// certificate signatures yet.
	ConsensusKeys map[int32]crypto.PublicKey
}

// New builds a view with sorted, deduplicated membership. The key map is
// copied.
func New(id int64, members []int32, keys map[int32]crypto.PublicKey) View {
	ms := dedupSorted(members)
	km := make(map[int32]crypto.PublicKey, len(keys))
	for m, k := range keys {
		km[m] = k
	}
	return View{ID: id, Members: ms, ConsensusKeys: km}
}

func dedupSorted(members []int32) []int32 {
	ms := make([]int32, len(members))
	copy(ms, members)
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	out := ms[:0]
	for i, m := range ms {
		if i == 0 || m != ms[i-1] {
			out = append(out, m)
		}
	}
	return out
}

// N returns the number of members.
func (v View) N() int { return len(v.Members) }

// F returns the fault threshold ⌊(N−1)/3⌋.
func (v View) F() int { return FaultTolerance(v.N()) }

// Quorum returns the WRITE/ACCEPT quorum for this view.
func (v View) Quorum() int { return ConsensusQuorum(v.N(), v.F()) }

// CertQuorum returns the block-certificate quorum ⌈(n+f+1)/2⌉.
func (v View) CertQuorum() int { return ByzantineQuorum(v.N(), v.F()) }

// JoinQuorum returns the n−f vote threshold for reconfigurations.
func (v View) JoinQuorum() int { return ReconfigQuorum(v.N(), v.F()) }

// MembershipHash fingerprints one installed configuration: the view ID plus
// the sorted, deduplicated membership. It is what reply view tags carry and
// what the client proxy compares to detect reconfigurations — including the
// view ID makes every reconfiguration change the hash even when a join and
// a removal later restore an identical member set.
func MembershipHash(id int64, members []int32) crypto.Hash {
	ms := dedupSorted(members)
	e := codec.NewEncoder(8 + 4*len(ms))
	e.Int64(id)
	for _, m := range ms {
		e.Int32(m)
	}
	return crypto.HashBytes([]byte("smartchain/membership/v1"), e.Bytes())
}

// MembershipHash fingerprints this view's (ID, members) pair.
func (v View) MembershipHash() crypto.Hash {
	return MembershipHash(v.ID, v.Members)
}

// Contains reports whether id is a member of the view.
func (v View) Contains(id int32) bool {
	i := sort.Search(len(v.Members), func(i int) bool { return v.Members[i] >= id })
	return i < len(v.Members) && v.Members[i] == id
}

// Leader returns the member that leads consensus epoch e (regency r in
// Mod-SMaRt terms): round-robin over the sorted membership.
func (v View) Leader(epoch int64) int32 {
	if len(v.Members) == 0 {
		return -1
	}
	return v.Members[int(epoch%int64(len(v.Members)))]
}

// PublicKeyOf implements crypto.KeyResolver over the view's consensus keys.
func (v View) PublicKeyOf(id int32) (crypto.PublicKey, bool) {
	k, ok := v.ConsensusKeys[id]
	return k, ok
}

// WithKey returns a copy of the view with the consensus key of id set. Used
// when late members announce their fresh keys after a reconfiguration.
func (v View) WithKey(id int32, key crypto.PublicKey) View {
	if !v.Contains(id) {
		return v
	}
	keys := make(map[int32]crypto.PublicKey, len(v.ConsensusKeys)+1)
	for m, k := range v.ConsensusKeys {
		keys[m] = k
	}
	keys[id] = key
	return View{ID: v.ID, Members: v.Members, ConsensusKeys: keys}
}

// Others returns all members except self.
func (v View) Others(self int32) []int32 {
	out := make([]int32, 0, len(v.Members))
	for _, m := range v.Members {
		if m != self {
			out = append(out, m)
		}
	}
	return out
}

// String renders the view compactly for logs.
func (v View) String() string {
	return fmt.Sprintf("view{id=%d n=%d f=%d members=%v}", v.ID, v.N(), v.F(), v.Members)
}

var _ crypto.KeyResolver = View{}
