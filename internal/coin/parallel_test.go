package coin

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"smartchain/internal/codec"
	"smartchain/internal/crypto"
	"smartchain/internal/smr"
)

// genCoin tracks a coin the randomized generator believes may exist:
// generation is optimistic (a failed spend never creates its outputs), so
// later picks of such coins exercise the unknown-coin path. What matters is
// that the request stream itself is a pure function of the seed.
type genCoin struct {
	id    CoinID
	owner int
	value uint64
}

type batchGen struct {
	rng     *rand.Rand
	issuers []*crypto.KeyPair
	nonces  []uint64
	seqs    []uint64
	coins   []genCoin
}

func newBatchGen(seed int64, nIssuers int) *batchGen {
	g := &batchGen{
		rng:    rand.New(rand.NewSource(seed)),
		nonces: make([]uint64, nIssuers),
		seqs:   make([]uint64, nIssuers),
	}
	for i := 0; i < nIssuers; i++ {
		g.issuers = append(g.issuers, crypto.SeededKeyPair("par-fuzz", int64(i)))
	}
	return g
}

func (g *batchGen) publics() []crypto.PublicKey {
	out := make([]crypto.PublicKey, len(g.issuers))
	for i, k := range g.issuers {
		out[i] = k.Public()
	}
	return out
}

func (g *batchGen) request(t *testing.T, issuer int, op []byte) smr.Request {
	t.Helper()
	g.seqs[issuer]++
	req, err := smr.NewSignedRequest(int64(1000+issuer), g.seqs[issuer], op, g.issuers[issuer])
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	return req
}

func (g *batchGen) genMint(t *testing.T, issuer int) smr.Request {
	t.Helper()
	g.nonces[issuer]++
	values := make([]uint64, 1+g.rng.Intn(3))
	for i := range values {
		values[i] = uint64(1 + g.rng.Intn(100))
	}
	tx, err := NewMint(g.issuers[issuer], g.nonces[issuer], values...)
	if err != nil {
		t.Fatalf("mint: %v", err)
	}
	for i, id := range tx.OutputIDs() {
		g.coins = append(g.coins, genCoin{id: id, owner: issuer, value: values[i]})
	}
	return g.request(t, issuer, tx.Encode())
}

func (g *batchGen) genSpend(t *testing.T) smr.Request {
	t.Helper()
	c := g.coins[g.rng.Intn(len(g.coins))]
	issuer := c.owner
	if g.rng.Intn(5) == 0 {
		issuer = g.rng.Intn(len(g.issuers)) // sometimes not the owner
	}
	value := c.value
	if g.rng.Intn(5) == 0 {
		value++ // sometimes a value mismatch
	}
	recipient := g.rng.Intn(len(g.issuers))
	g.nonces[issuer]++
	tx, err := NewSpend(g.issuers[issuer], g.nonces[issuer], []CoinID{c.id},
		[]Output{{Owner: g.issuers[recipient].Public(), Value: value}})
	if err != nil {
		t.Fatalf("spend: %v", err)
	}
	if issuer == c.owner && value == c.value {
		// Optimistically successful: its output becomes spendable.
		for _, id := range tx.OutputIDs() {
			g.coins = append(g.coins, genCoin{id: id, owner: recipient, value: value})
		}
	}
	return g.request(t, issuer, tx.Encode())
}

// genRequest draws one randomized request: mostly transactions with
// overlapping coin sets, mixed with ordered queries, garbage payloads, and
// issuer/signer mismatches.
func (g *batchGen) genRequest(t *testing.T) smr.Request {
	t.Helper()
	switch p := g.rng.Intn(100); {
	case p < 30 || len(g.coins) == 0:
		return g.genMint(t, g.rng.Intn(len(g.issuers)))
	case p < 70:
		return g.genSpend(t)
	case p < 80:
		addr := g.issuers[g.rng.Intn(len(g.issuers))].Public()
		return g.request(t, g.rng.Intn(len(g.issuers)), EncodeBalanceQuery(addr))
	case p < 85:
		return g.request(t, g.rng.Intn(len(g.issuers)), EncodeUTXOCountQuery())
	case p < 93:
		junk := make([]byte, 1+g.rng.Intn(40))
		g.rng.Read(junk)
		return g.request(t, g.rng.Intn(len(g.issuers)), junk)
	default:
		// Envelope signer ≠ transaction issuer.
		g.nonces[0]++
		tx, err := NewMint(g.issuers[0], g.nonces[0], 10)
		if err != nil {
			t.Fatalf("mint: %v", err)
		}
		return g.request(t, 1+g.rng.Intn(len(g.issuers)-1), tx.Encode())
	}
}

// TestParallelExecutionDeterminism is the fuzz/property test of the
// conflict-aware executor: randomized batches (mixed MINT/SPEND/queries,
// overlapping coin sets, malformed ops) must produce bit-identical result
// vectors and post-state snapshots at every worker count.
func TestParallelExecutionDeterminism(t *testing.T) {
	workerCounts := []int{1, 4, 8}
	for seed := int64(1); seed <= 3; seed++ {
		g := newBatchGen(seed, 4)
		minters := g.publics()
		batches := make([][]smr.Request, 6)
		for b := range batches {
			reqs := make([]smr.Request, 32)
			for i := range reqs {
				reqs[i] = g.genRequest(t)
			}
			batches[b] = reqs
		}

		var baseResults [][][]byte
		var baseSnap []byte
		for _, w := range workerCounts {
			svc := NewService(minters)
			svc.SetExecWorkers(w)
			var results [][][]byte
			for _, reqs := range batches {
				results = append(results, svc.ExecuteBatch(smr.BatchContext{}, reqs))
			}
			snap := svc.Snapshot()
			if w == workerCounts[0] {
				baseResults, baseSnap = results, snap
				continue
			}
			for b := range results {
				for i := range results[b] {
					if !bytes.Equal(results[b][i], baseResults[b][i]) {
						t.Fatalf("seed %d workers %d: batch %d result %d diverged:\n  got  %x\n  want %x",
							seed, w, b, i, results[b][i], baseResults[b][i])
					}
				}
			}
			if !bytes.Equal(snap, baseSnap) {
				t.Fatalf("seed %d workers %d: post-state snapshot diverged", seed, w)
			}
			if st := svc.ExecStats(); st.Batches != int64(len(batches)) {
				t.Fatalf("seed %d workers %d: parallel path executed %d of %d batches",
					seed, w, st.Batches, len(batches))
			}
		}
	}
}

// TestOrderedQueryObservesPrefix proves an ordered query at batch position i
// observes exactly the writes of positions < i — including writes of the
// same batch — at a parallel worker count.
func TestOrderedQueryObservesPrefix(t *testing.T) {
	m := minterKey(0)
	alice := userKey(1)
	svc := NewService([]crypto.PublicKey{m.Public()})
	svc.SetExecWorkers(8)

	mintTx, err := NewMint(m, 1, 100)
	if err != nil {
		t.Fatalf("mint: %v", err)
	}
	coinID := mintTx.OutputIDs()[0]
	spendTx, err := NewSpend(m, 2, []CoinID{coinID}, []Output{{Owner: alice.Public(), Value: 100}})
	if err != nil {
		t.Fatalf("spend: %v", err)
	}

	mkReq := func(seq uint64, op []byte, key *crypto.KeyPair) smr.Request {
		req, err := smr.NewSignedRequest(7, seq, op, key)
		if err != nil {
			t.Fatalf("req: %v", err)
		}
		return req
	}
	batch := []smr.Request{
		mkReq(1, EncodeBalanceQuery(alice.Public()), m), // 0: before any write → 0
		mkReq(2, mintTx.Encode(), m),                    // 1: mint 100 to m
		mkReq(3, EncodeBalanceQuery(alice.Public()), m), // 2: mint didn't pay alice → 0
		mkReq(4, spendTx.Encode(), m),                   // 3: m → alice 100
		mkReq(5, EncodeBalanceQuery(alice.Public()), m), // 4: observes the spend → 100
		mkReq(6, EncodeUTXOCountQuery(), m),             // 5: barrier: 1 coin live
	}
	results := svc.ExecuteBatch(smr.BatchContext{}, batch)

	wantBalance := func(i int, want uint64) {
		t.Helper()
		got, err := ParseUint64Result(results[i])
		if err != nil {
			t.Fatalf("result %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("query at position %d saw %d, want %d", i, got, want)
		}
	}
	if results[1][0] != ResultOK || results[3][0] != ResultOK {
		t.Fatalf("tx results: %d %d", results[1][0], results[3][0])
	}
	wantBalance(0, 0)
	wantBalance(2, 0)
	wantBalance(4, 100)
	wantBalance(5, 1) // UTXO count after mint+spend
}

// TestRestoreRejectsCorruptCounts exercises the snapshot hardening: declared
// element counts far beyond the actual buffer must be rejected up front (no
// count-sized allocation), and a failed restore must leave state untouched.
func TestRestoreRejectsCorruptCounts(t *testing.T) {
	m := minterKey(0)
	svc := NewService([]crypto.PublicKey{m.Public()})
	mustMint(t, svc.State(), m, 1, 100, 200)
	before := svc.Snapshot()

	hugeCoins := func() []byte {
		e := codec.NewEncoder(64)
		e.Uint32(0)          // no minters
		e.Uint32(1 << 30)    // a billion declared coins...
		e.Uint64(0xdeadbeef) // ...backed by 8 bytes
		return e.Bytes()
	}()
	hugeMinters := func() []byte {
		e := codec.NewEncoder(8)
		e.Uint32(1 << 30)
		return e.Bytes()
	}()
	truncated := before[:len(before)-10]

	for name, snap := range map[string][]byte{
		"huge coin count":   hugeCoins,
		"huge minter count": hugeMinters,
		"truncated coins":   truncated,
		"empty":             nil,
	} {
		if err := svc.Restore(snap); err == nil {
			t.Fatalf("%s: restore must fail", name)
		}
	}
	if !bytes.Equal(svc.Snapshot(), before) {
		t.Fatal("failed restore must leave state untouched")
	}
}

// TestParallelExecutionRaceStress runs parallel batch execution concurrently
// with snapshots, queries, and restores — the lock discipline (execution
// gate, shard locks, minter lock) must hold under the race detector.
func TestParallelExecutionRaceStress(t *testing.T) {
	g := newBatchGen(42, 3)
	svc := NewService(g.publics())
	svc.SetExecWorkers(8)

	// Seed some state and capture a snapshot to restore mid-stream.
	seedBatch := make([]smr.Request, 8)
	for i := range seedBatch {
		seedBatch[i] = g.genMint(t, i%3)
	}
	svc.ExecuteBatch(smr.BatchContext{}, seedBatch)
	seedSnap := svc.Snapshot()

	batches := make([][]smr.Request, 30)
	for b := range batches {
		reqs := make([]smr.Request, 16)
		for i := range reqs {
			reqs[i] = g.genRequest(t)
		}
		batches[b] = reqs
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // unordered queries against live state
		defer wg.Done()
		addr := g.issuers[0].Public()
		for {
			select {
			case <-done:
				return
			default:
			}
			svc.State().Balance(addr)
			svc.State().UTXOCount()
			svc.ExecuteUnordered(smr.Request{Op: EncodeBalanceQuery(addr)})
		}
	}()
	go func() { // snapshots (state transfer reads)
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if snap := svc.Snapshot(); len(snap) < 8 {
				t.Error("short snapshot")
				return
			}
		}
	}()
	go func() { // restores (incoming state transfer)
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if err := svc.Restore(seedSnap); err != nil {
				t.Errorf("restore: %v", err)
				return
			}
		}
	}()

	for _, reqs := range batches {
		results := svc.ExecuteBatch(smr.BatchContext{}, reqs)
		if len(results) != len(reqs) {
			t.Fatalf("results: %d", len(results))
		}
	}
	close(done)
	wg.Wait()
}

// TestRequestKeysDeclarations pins the conflict contract: declared writes
// must cover every key a transaction can mutate, queries declare reads or a
// barrier, and constant-result requests declare nothing.
func TestRequestKeysDeclarations(t *testing.T) {
	m := minterKey(0)
	alice := userKey(1)
	svc := NewService([]crypto.PublicKey{m.Public()})

	mintTx, err := NewMint(m, 1, 50)
	if err != nil {
		t.Fatalf("mint: %v", err)
	}
	spendTx, err := NewSpend(m, 2, mintTx.OutputIDs(), []Output{{Owner: alice.Public(), Value: 50}})
	if err != nil {
		t.Fatalf("spend: %v", err)
	}
	mkReq := func(op []byte, key *crypto.KeyPair) smr.Request {
		req, err := smr.NewSignedRequest(9, 1, op, key)
		if err != nil {
			t.Fatalf("req: %v", err)
		}
		return req
	}

	has := func(keys []string, k string) bool {
		for _, x := range keys {
			if x == k {
				return true
			}
		}
		return false
	}

	mintReq := mkReq(mintTx.Encode(), m)
	ks := svc.RequestKeys(&mintReq)
	if !has(ks.Writes, "c"+string(mintTx.OutputIDs()[0][:])) || !has(ks.Writes, "a"+string(m.Public())) {
		t.Fatalf("mint keys missing output coin or owner account: %q", ks.Writes)
	}

	spendReq := mkReq(spendTx.Encode(), m)
	ks = svc.RequestKeys(&spendReq)
	for _, want := range []string{
		"c" + string(mintTx.OutputIDs()[0][:]),  // consumed input
		"c" + string(spendTx.OutputIDs()[0][:]), // created output
		"a" + string(alice.Public()),            // recipient account
		"a" + string(m.Public()),                // issuer account
	} {
		if !has(ks.Writes, want) {
			t.Fatalf("spend keys missing %q: %q", want, ks.Writes)
		}
	}

	balReq := mkReq(EncodeBalanceQuery(alice.Public()), m)
	ks = svc.RequestKeys(&balReq)
	if len(ks.Writes) != 0 || !has(ks.Reads, "a"+string(alice.Public())) || ks.Barrier {
		t.Fatalf("balance query keys: %+v", ks)
	}

	countReq := mkReq(EncodeUTXOCountQuery(), m)
	if ks = svc.RequestKeys(&countReq); !ks.Barrier {
		t.Fatalf("utxo count must be a barrier: %+v", ks)
	}

	junkReq := mkReq([]byte{0xEE, 0x01, 0x02}, m)
	if ks = svc.RequestKeys(&junkReq); len(ks.Reads) != 0 || len(ks.Writes) != 0 || ks.Barrier {
		t.Fatalf("malformed op must declare nothing: %+v", ks)
	}

	hijacked := mkReq(mintTx.Encode(), userKey(9))
	if ks = svc.RequestKeys(&hijacked); len(ks.Writes) != 0 {
		t.Fatalf("signer-mismatch must declare nothing: %+v", ks)
	}
}

// TestExecWorkersConfig pins the SetExecWorkers contract: ≤1 is the exact
// sequential path (no executor), >1 configures the bound, and reconfiguring
// down tears the executor away again (cluster restarts reuse app instances).
func TestExecWorkersConfig(t *testing.T) {
	svc := NewService(nil)
	if svc.ExecWorkers() != 1 {
		t.Fatalf("default workers: %d", svc.ExecWorkers())
	}
	svc.SetExecWorkers(6)
	if svc.ExecWorkers() != 6 {
		t.Fatalf("workers: %d", svc.ExecWorkers())
	}
	svc.SetExecWorkers(0)
	if svc.ExecWorkers() != 1 {
		t.Fatalf("workers after reset: %d", svc.ExecWorkers())
	}
	if st := svc.ExecStats(); st.Batches != 0 || st.Requests != 0 {
		t.Fatalf("sequential stats: %+v", st)
	}
}

// TestOutputIDsMatchCreatedCoins pins OutputIDs (the analyzer's view of a
// transaction's created coins) to the IDs execution actually creates.
func TestOutputIDsMatchCreatedCoins(t *testing.T) {
	s, m := newTestState()
	tx, err := NewMint(m, 1, 10, 20, 30)
	if err != nil {
		t.Fatalf("mint: %v", err)
	}
	predicted := tx.OutputIDs()
	res := s.Apply(&tx)
	code, created, err := ParseResult(res)
	if err != nil || code != ResultOK {
		t.Fatalf("apply: code=%d err=%v", code, err)
	}
	if fmt.Sprint(predicted) != fmt.Sprint(created) {
		t.Fatalf("OutputIDs diverge from created coins:\n  predicted %v\n  created   %v", predicted, created)
	}
}
