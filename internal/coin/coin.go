// Package coin implements SMaRtCoin (paper §IV-A): a UTXO-model digital
// coin service, the "simplest useful blockchain application". It supports
// MINT (authorized addresses create coins) and SPEND (coin owners transfer
// them), with every transaction signed by its issuer.
//
// The service is deterministic: executing the same transaction sequence from
// the same genesis state always yields the same state and results, which is
// what state machine replication requires (paper §II-B).
package coin

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"smartchain/internal/codec"
	"smartchain/internal/crypto"
)

// TxType discriminates the two SMaRtCoin transactions.
type TxType byte

const (
	// TxMint creates value for an address on the authorized-minters list.
	TxMint TxType = iota + 1
	// TxSpend consumes input coins and produces output coins.
	TxSpend
)

// ContextTx is the signature domain for coin transactions.
const ContextTx = "smartcoin/tx/v1"

// Execution result codes, the first byte of every result.
const (
	ResultOK byte = iota + 1
	ResultErrUnauthorized
	ResultErrUnknownCoin
	ResultErrNotOwner
	ResultErrValueMismatch
	ResultErrBadSignature
	ResultErrMalformed
	ResultErrDoubleSpend
)

// Errors surfaced by transaction construction and validation.
var (
	ErrMalformedTx = errors.New("coin: malformed transaction")
	ErrBadTxSig    = errors.New("coin: invalid transaction signature")
)

// CoinID uniquely identifies a coin: the hash of the transaction that
// created it and the output index.
type CoinID = crypto.Hash

// Coin is one unspent transaction output.
type Coin struct {
	ID    CoinID
	Owner crypto.PublicKey
	Value uint64
}

// Output is a (recipient, amount) pair of a transaction.
type Output struct {
	Owner crypto.PublicKey
	Value uint64
}

// Tx is a SMaRtCoin transaction. Request/reply sizes intentionally land in
// the ballpark the paper reports (~180 B MINT, ~310 B single-input
// single-output SPEND requests).
type Tx struct {
	Type    TxType
	Issuer  crypto.PublicKey
	Inputs  []CoinID // SPEND only
	Outputs []Output
	Nonce   uint64 // distinguishes otherwise-identical mints
	Sig     []byte
}

func (tx *Tx) signedPortion() []byte {
	e := codec.NewEncoder(64 + 40*len(tx.Inputs) + 48*len(tx.Outputs))
	e.Byte(byte(tx.Type))
	e.WriteBytes(tx.Issuer)
	e.Uint32(uint32(len(tx.Inputs)))
	for _, in := range tx.Inputs {
		e.Bytes32(in)
	}
	e.Uint32(uint32(len(tx.Outputs)))
	for _, out := range tx.Outputs {
		e.WriteBytes(out.Owner)
		e.Uint64(out.Value)
	}
	e.Uint64(tx.Nonce)
	return e.Bytes()
}

// NewMint builds a signed MINT transaction creating outputs for the issuer.
func NewMint(issuer *crypto.KeyPair, nonce uint64, values ...uint64) (Tx, error) {
	tx := Tx{Type: TxMint, Issuer: issuer.Public(), Nonce: nonce}
	for _, v := range values {
		tx.Outputs = append(tx.Outputs, Output{Owner: issuer.Public(), Value: v})
	}
	return signTx(tx, issuer)
}

// NewSpend builds a signed SPEND transaction.
func NewSpend(issuer *crypto.KeyPair, nonce uint64, inputs []CoinID, outputs []Output) (Tx, error) {
	tx := Tx{Type: TxSpend, Issuer: issuer.Public(), Inputs: inputs, Outputs: outputs, Nonce: nonce}
	return signTx(tx, issuer)
}

func signTx(tx Tx, key *crypto.KeyPair) (Tx, error) {
	sig, err := key.Sign(ContextTx, tx.signedPortion())
	if err != nil {
		return Tx{}, fmt.Errorf("sign tx: %w", err)
	}
	tx.Sig = sig
	return tx, nil
}

// VerifySig checks the transaction signature against the issuer key.
func (tx *Tx) VerifySig() error {
	if !crypto.Verify(tx.Issuer, ContextTx, tx.signedPortion(), tx.Sig) {
		return ErrBadTxSig
	}
	return nil
}

// Hash returns the transaction identity (covers the signature).
func (tx *Tx) Hash() crypto.Hash {
	return crypto.HashBytes(tx.signedPortion(), tx.Sig)
}

// OutputID derives the coin ID of output index i of this transaction.
func (tx *Tx) OutputID(i int) CoinID {
	return outputID(tx.Hash(), i)
}

// OutputIDs derives every output's coin ID, hashing the transaction once
// (OutputID re-hashes per call; the execution hot path and the conflict
// analyzer both need all of them).
func (tx *Tx) OutputIDs() []CoinID {
	h := tx.Hash()
	ids := make([]CoinID, len(tx.Outputs))
	for i := range tx.Outputs {
		ids[i] = outputID(h, i)
	}
	return ids
}

func outputID(txHash crypto.Hash, i int) CoinID {
	e := codec.NewEncoder(36)
	e.Bytes32(txHash)
	e.Uint32(uint32(i))
	return crypto.HashBytes(e.Bytes())
}

// Encode serializes the transaction (the operation payload of a request).
func (tx *Tx) Encode() []byte {
	e := codec.NewEncoder(96 + 40*len(tx.Inputs) + 48*len(tx.Outputs))
	e.WriteBytes(tx.signedPortion())
	e.WriteBytes(tx.Sig)
	return e.Bytes()
}

// Decode parses an encoded transaction.
func Decode(data []byte) (Tx, error) {
	outer := codec.NewDecoder(data)
	body := outer.ReadBytes()
	sig := outer.ReadBytesCopy()
	if err := outer.Finish(); err != nil {
		return Tx{}, fmt.Errorf("%w: %v", ErrMalformedTx, err)
	}
	d := codec.NewDecoder(body)
	var tx Tx
	tx.Type = TxType(d.Byte())
	tx.Issuer = crypto.PublicKey(d.ReadBytesCopy())
	nIn := d.Uint32()
	if d.Err() != nil || nIn > 1<<16 {
		return Tx{}, fmt.Errorf("%w: inputs", ErrMalformedTx)
	}
	for i := uint32(0); i < nIn; i++ {
		tx.Inputs = append(tx.Inputs, d.Bytes32())
	}
	nOut := d.Uint32()
	if d.Err() != nil || nOut > 1<<16 {
		return Tx{}, fmt.Errorf("%w: outputs", ErrMalformedTx)
	}
	for i := uint32(0); i < nOut; i++ {
		var o Output
		o.Owner = crypto.PublicKey(d.ReadBytesCopy())
		o.Value = d.Uint64()
		tx.Outputs = append(tx.Outputs, o)
	}
	tx.Nonce = d.Uint64()
	if err := d.Finish(); err != nil {
		return Tx{}, fmt.Errorf("%w: %v", ErrMalformedTx, err)
	}
	if tx.Type != TxMint && tx.Type != TxSpend {
		return Tx{}, fmt.Errorf("%w: type %d", ErrMalformedTx, tx.Type)
	}
	tx.Sig = sig
	return tx, nil
}

// stateShards is the UTXO map shard count. Shard selection uses the first
// byte of the (uniformly distributed) coin ID hash, so it must stay a power
// of two ≤ 256.
const stateShards = 64

// stateShard is one slice of the UTXO set with its own lock, so
// transactions on disjoint coins (the only kind the parallel executor runs
// concurrently) never contend on a global mutex.
type stateShard struct {
	mu    sync.RWMutex
	utxos map[CoinID]Coin
}

// State is the SMaRtCoin service state: the UTXO set plus the minter list
// (paper: "a table with the coins assigned to each address in memory and a
// list of addresses authorized to create new coins"). The UTXO set is
// sharded by coin ID so the conflict-aware parallel executor can apply
// key-disjoint transactions concurrently; execMu gates whole-batch
// execution against readers, so queries and snapshots observe only
// block-boundary states — never a half-applied transaction.
type State struct {
	// execMu is held exclusively for the duration of one batch application
	// and shared by every reader entry point (queries, snapshots). Within a
	// batch, in-batch ordered queries use the *Locked variants instead: the
	// executor's strata guarantee they never race a conflicting writer.
	execMu sync.RWMutex

	shards [stateShards]stateShard

	mintersMu sync.RWMutex
	minters   map[string]bool // key: string(PublicKey)
}

// NewState creates a state authorizing the given minter addresses.
func NewState(minters []crypto.PublicKey) *State {
	s := &State{minters: make(map[string]bool, len(minters))}
	for i := range s.shards {
		s.shards[i].utxos = make(map[CoinID]Coin)
	}
	for _, m := range minters {
		s.minters[string(m)] = true
	}
	return s
}

func (s *State) shardOf(id CoinID) *stateShard {
	return &s.shards[id[0]&(stateShards-1)]
}

func (s *State) getCoin(id CoinID) (Coin, bool) {
	sh := s.shardOf(id)
	sh.mu.RLock()
	c, ok := sh.utxos[id]
	sh.mu.RUnlock()
	return c, ok
}

func (s *State) putCoin(c Coin) {
	sh := s.shardOf(c.ID)
	sh.mu.Lock()
	sh.utxos[c.ID] = c
	sh.mu.Unlock()
}

func (s *State) deleteCoin(id CoinID) {
	sh := s.shardOf(id)
	sh.mu.Lock()
	delete(sh.utxos, id)
	sh.mu.Unlock()
}

// isMinter reports whether addr is authorized to mint. The minter set is
// immutable during batch execution (only Restore replaces it), so this is a
// read that never conflicts with transactions.
func (s *State) isMinter(addr crypto.PublicKey) bool {
	s.mintersMu.RLock()
	ok := s.minters[string(addr)]
	s.mintersMu.RUnlock()
	return ok
}

// Apply executes one transaction, mutating the state, and returns the
// result bytes stored in the block (result code, then created coin IDs).
// Signature verification is NOT performed here: the SMR layer does it with
// the configured strategy (sequential or parallel, Table I). A transaction
// that reaches Apply is assumed signature-valid; Apply enforces the
// semantic rules (authorization, ownership, conservation).
//
// Concurrent Apply calls are safe only for transactions whose key sets
// (input coins, created coins, touched owner accounts) are disjoint — the
// guarantee the conflict-aware executor provides. Sequential callers get
// the exact historical semantics.
func (s *State) Apply(tx *Tx) []byte {
	switch tx.Type {
	case TxMint:
		return s.applyMint(tx)
	case TxSpend:
		return s.applySpend(tx)
	default:
		return []byte{ResultErrMalformed}
	}
}

func (s *State) applyMint(tx *Tx) []byte {
	if !s.isMinter(tx.Issuer) {
		return []byte{ResultErrUnauthorized}
	}
	if len(tx.Outputs) == 0 {
		return []byte{ResultErrMalformed}
	}
	return s.createOutputs(tx)
}

func (s *State) applySpend(tx *Tx) []byte {
	if len(tx.Inputs) == 0 || len(tx.Outputs) == 0 {
		return []byte{ResultErrMalformed}
	}
	var inSum uint64
	seen := make(map[CoinID]bool, len(tx.Inputs))
	for _, id := range tx.Inputs {
		if seen[id] {
			return []byte{ResultErrDoubleSpend}
		}
		seen[id] = true
		c, ok := s.getCoin(id)
		if !ok {
			return []byte{ResultErrUnknownCoin}
		}
		if !c.Owner.Equal(tx.Issuer) {
			return []byte{ResultErrNotOwner}
		}
		inSum += c.Value
	}
	var outSum uint64
	for _, o := range tx.Outputs {
		outSum += o.Value
	}
	if inSum != outSum {
		return []byte{ResultErrValueMismatch}
	}
	for _, id := range tx.Inputs {
		s.deleteCoin(id)
	}
	return s.createOutputs(tx)
}

// createOutputs materializes tx's outputs and returns OK + coin IDs.
func (s *State) createOutputs(tx *Tx) []byte {
	out := make([]byte, 1, 1+crypto.HashSize*len(tx.Outputs))
	out[0] = ResultOK
	ids := tx.OutputIDs()
	for i, o := range tx.Outputs {
		s.putCoin(Coin{ID: ids[i], Owner: o.Owner, Value: o.Value})
		out = append(out, ids[i][:]...)
	}
	return out
}

// Balance sums the values of coins owned by addr.
func (s *State) Balance(addr crypto.PublicKey) uint64 {
	s.execMu.RLock()
	defer s.execMu.RUnlock()
	return s.balanceLocked(addr)
}

// balanceLocked is Balance for in-batch ordered queries: the caller (the
// batch executor) already holds execMu exclusively, and the strata schedule
// guarantees no concurrently-running transaction touches addr's account.
func (s *State) balanceLocked(addr crypto.PublicKey) uint64 {
	var sum uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, c := range sh.utxos {
			if c.Owner.Equal(addr) {
				sum += c.Value
			}
		}
		sh.mu.RUnlock()
	}
	return sum
}

// CoinsOf returns the coins owned by addr, sorted by ID for determinism.
func (s *State) CoinsOf(addr crypto.PublicKey) []Coin {
	s.execMu.RLock()
	defer s.execMu.RUnlock()
	var out []Coin
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, c := range sh.utxos {
			if c.Owner.Equal(addr) {
				out = append(out, c)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		return compareHash(out[i].ID, out[j].ID) < 0
	})
	return out
}

// TotalSupply sums every unspent coin.
func (s *State) TotalSupply() uint64 {
	s.execMu.RLock()
	defer s.execMu.RUnlock()
	var sum uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, c := range sh.utxos {
			sum += c.Value
		}
		sh.mu.RUnlock()
	}
	return sum
}

// UTXOCount returns the number of unspent coins.
func (s *State) UTXOCount() int {
	s.execMu.RLock()
	defer s.execMu.RUnlock()
	return s.utxoCountLocked()
}

// utxoCountLocked is UTXOCount for in-batch ordered queries; the count
// query is scheduled as a barrier, so no transaction runs concurrently.
func (s *State) utxoCountLocked() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.utxos)
		sh.mu.RUnlock()
	}
	return n
}

// Lookup returns the coin with the given ID, if it is unspent.
func (s *State) Lookup(id CoinID) (Coin, bool) {
	s.execMu.RLock()
	defer s.execMu.RUnlock()
	return s.getCoin(id)
}

func compareHash(a, b crypto.Hash) int {
	for i := range a {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}
