// Package coin implements SMaRtCoin (paper §IV-A): a UTXO-model digital
// coin service, the "simplest useful blockchain application". It supports
// MINT (authorized addresses create coins) and SPEND (coin owners transfer
// them), with every transaction signed by its issuer.
//
// The service is deterministic: executing the same transaction sequence from
// the same genesis state always yields the same state and results, which is
// what state machine replication requires (paper §II-B).
package coin

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"smartchain/internal/codec"
	"smartchain/internal/crypto"
)

// TxType discriminates the two SMaRtCoin transactions.
type TxType byte

const (
	// TxMint creates value for an address on the authorized-minters list.
	TxMint TxType = iota + 1
	// TxSpend consumes input coins and produces output coins.
	TxSpend
)

// ContextTx is the signature domain for coin transactions.
const ContextTx = "smartcoin/tx/v1"

// Execution result codes, the first byte of every result.
const (
	ResultOK byte = iota + 1
	ResultErrUnauthorized
	ResultErrUnknownCoin
	ResultErrNotOwner
	ResultErrValueMismatch
	ResultErrBadSignature
	ResultErrMalformed
	ResultErrDoubleSpend
)

// Errors surfaced by transaction construction and validation.
var (
	ErrMalformedTx = errors.New("coin: malformed transaction")
	ErrBadTxSig    = errors.New("coin: invalid transaction signature")
)

// CoinID uniquely identifies a coin: the hash of the transaction that
// created it and the output index.
type CoinID = crypto.Hash

// Coin is one unspent transaction output.
type Coin struct {
	ID    CoinID
	Owner crypto.PublicKey
	Value uint64
}

// Output is a (recipient, amount) pair of a transaction.
type Output struct {
	Owner crypto.PublicKey
	Value uint64
}

// Tx is a SMaRtCoin transaction. Request/reply sizes intentionally land in
// the ballpark the paper reports (~180 B MINT, ~310 B single-input
// single-output SPEND requests).
type Tx struct {
	Type    TxType
	Issuer  crypto.PublicKey
	Inputs  []CoinID // SPEND only
	Outputs []Output
	Nonce   uint64 // distinguishes otherwise-identical mints
	Sig     []byte
}

func (tx *Tx) signedPortion() []byte {
	e := codec.NewEncoder(64 + 40*len(tx.Inputs) + 48*len(tx.Outputs))
	e.Byte(byte(tx.Type))
	e.WriteBytes(tx.Issuer)
	e.Uint32(uint32(len(tx.Inputs)))
	for _, in := range tx.Inputs {
		e.Bytes32(in)
	}
	e.Uint32(uint32(len(tx.Outputs)))
	for _, out := range tx.Outputs {
		e.WriteBytes(out.Owner)
		e.Uint64(out.Value)
	}
	e.Uint64(tx.Nonce)
	return e.Bytes()
}

// NewMint builds a signed MINT transaction creating outputs for the issuer.
func NewMint(issuer *crypto.KeyPair, nonce uint64, values ...uint64) (Tx, error) {
	tx := Tx{Type: TxMint, Issuer: issuer.Public(), Nonce: nonce}
	for _, v := range values {
		tx.Outputs = append(tx.Outputs, Output{Owner: issuer.Public(), Value: v})
	}
	return signTx(tx, issuer)
}

// NewSpend builds a signed SPEND transaction.
func NewSpend(issuer *crypto.KeyPair, nonce uint64, inputs []CoinID, outputs []Output) (Tx, error) {
	tx := Tx{Type: TxSpend, Issuer: issuer.Public(), Inputs: inputs, Outputs: outputs, Nonce: nonce}
	return signTx(tx, issuer)
}

func signTx(tx Tx, key *crypto.KeyPair) (Tx, error) {
	sig, err := key.Sign(ContextTx, tx.signedPortion())
	if err != nil {
		return Tx{}, fmt.Errorf("sign tx: %w", err)
	}
	tx.Sig = sig
	return tx, nil
}

// VerifySig checks the transaction signature against the issuer key.
func (tx *Tx) VerifySig() error {
	if !crypto.Verify(tx.Issuer, ContextTx, tx.signedPortion(), tx.Sig) {
		return ErrBadTxSig
	}
	return nil
}

// Hash returns the transaction identity (covers the signature).
func (tx *Tx) Hash() crypto.Hash {
	return crypto.HashBytes(tx.signedPortion(), tx.Sig)
}

// OutputID derives the coin ID of output index i of this transaction.
func (tx *Tx) OutputID(i int) CoinID {
	h := tx.Hash()
	e := codec.NewEncoder(36)
	e.Bytes32(h)
	e.Uint32(uint32(i))
	return crypto.HashBytes(e.Bytes())
}

// Encode serializes the transaction (the operation payload of a request).
func (tx *Tx) Encode() []byte {
	e := codec.NewEncoder(96 + 40*len(tx.Inputs) + 48*len(tx.Outputs))
	e.WriteBytes(tx.signedPortion())
	e.WriteBytes(tx.Sig)
	return e.Bytes()
}

// Decode parses an encoded transaction.
func Decode(data []byte) (Tx, error) {
	outer := codec.NewDecoder(data)
	body := outer.ReadBytes()
	sig := outer.ReadBytesCopy()
	if err := outer.Finish(); err != nil {
		return Tx{}, fmt.Errorf("%w: %v", ErrMalformedTx, err)
	}
	d := codec.NewDecoder(body)
	var tx Tx
	tx.Type = TxType(d.Byte())
	tx.Issuer = crypto.PublicKey(d.ReadBytesCopy())
	nIn := d.Uint32()
	if d.Err() != nil || nIn > 1<<16 {
		return Tx{}, fmt.Errorf("%w: inputs", ErrMalformedTx)
	}
	for i := uint32(0); i < nIn; i++ {
		tx.Inputs = append(tx.Inputs, d.Bytes32())
	}
	nOut := d.Uint32()
	if d.Err() != nil || nOut > 1<<16 {
		return Tx{}, fmt.Errorf("%w: outputs", ErrMalformedTx)
	}
	for i := uint32(0); i < nOut; i++ {
		var o Output
		o.Owner = crypto.PublicKey(d.ReadBytesCopy())
		o.Value = d.Uint64()
		tx.Outputs = append(tx.Outputs, o)
	}
	tx.Nonce = d.Uint64()
	if err := d.Finish(); err != nil {
		return Tx{}, fmt.Errorf("%w: %v", ErrMalformedTx, err)
	}
	if tx.Type != TxMint && tx.Type != TxSpend {
		return Tx{}, fmt.Errorf("%w: type %d", ErrMalformedTx, tx.Type)
	}
	tx.Sig = sig
	return tx, nil
}

// State is the SMaRtCoin service state: the UTXO set plus the minter list
// (paper: "a table with the coins assigned to each address in memory and a
// list of addresses authorized to create new coins").
type State struct {
	mu      sync.RWMutex
	utxos   map[CoinID]Coin
	minters map[string]bool // key: string(PublicKey)
}

// NewState creates a state authorizing the given minter addresses.
func NewState(minters []crypto.PublicKey) *State {
	s := &State{
		utxos:   make(map[CoinID]Coin),
		minters: make(map[string]bool, len(minters)),
	}
	for _, m := range minters {
		s.minters[string(m)] = true
	}
	return s
}

// Apply executes one transaction, mutating the state, and returns the
// result bytes stored in the block (result code, then created coin IDs).
// Signature verification is NOT performed here: the SMR layer does it with
// the configured strategy (sequential or parallel, Table I). A transaction
// that reaches Apply is assumed signature-valid; Apply enforces the
// semantic rules (authorization, ownership, conservation).
func (s *State) Apply(tx *Tx) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch tx.Type {
	case TxMint:
		return s.applyMint(tx)
	case TxSpend:
		return s.applySpend(tx)
	default:
		return []byte{ResultErrMalformed}
	}
}

func (s *State) applyMint(tx *Tx) []byte {
	if !s.minters[string(tx.Issuer)] {
		return []byte{ResultErrUnauthorized}
	}
	if len(tx.Outputs) == 0 {
		return []byte{ResultErrMalformed}
	}
	return s.createOutputs(tx)
}

func (s *State) applySpend(tx *Tx) []byte {
	if len(tx.Inputs) == 0 || len(tx.Outputs) == 0 {
		return []byte{ResultErrMalformed}
	}
	var inSum uint64
	seen := make(map[CoinID]bool, len(tx.Inputs))
	for _, id := range tx.Inputs {
		if seen[id] {
			return []byte{ResultErrDoubleSpend}
		}
		seen[id] = true
		c, ok := s.utxos[id]
		if !ok {
			return []byte{ResultErrUnknownCoin}
		}
		if !c.Owner.Equal(tx.Issuer) {
			return []byte{ResultErrNotOwner}
		}
		inSum += c.Value
	}
	var outSum uint64
	for _, o := range tx.Outputs {
		outSum += o.Value
	}
	if inSum != outSum {
		return []byte{ResultErrValueMismatch}
	}
	for _, id := range tx.Inputs {
		delete(s.utxos, id)
	}
	return s.createOutputs(tx)
}

// createOutputs materializes tx's outputs and returns OK + coin IDs.
func (s *State) createOutputs(tx *Tx) []byte {
	out := make([]byte, 1, 1+crypto.HashSize*len(tx.Outputs))
	out[0] = ResultOK
	for i, o := range tx.Outputs {
		id := tx.OutputID(i)
		s.utxos[id] = Coin{ID: id, Owner: o.Owner, Value: o.Value}
		out = append(out, id[:]...)
	}
	return out
}

// Balance sums the values of coins owned by addr.
func (s *State) Balance(addr crypto.PublicKey) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var sum uint64
	for _, c := range s.utxos {
		if c.Owner.Equal(addr) {
			sum += c.Value
		}
	}
	return sum
}

// CoinsOf returns the coins owned by addr, sorted by ID for determinism.
func (s *State) CoinsOf(addr crypto.PublicKey) []Coin {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Coin
	for _, c := range s.utxos {
		if c.Owner.Equal(addr) {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return compareHash(out[i].ID, out[j].ID) < 0
	})
	return out
}

// TotalSupply sums every unspent coin.
func (s *State) TotalSupply() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var sum uint64
	for _, c := range s.utxos {
		sum += c.Value
	}
	return sum
}

// UTXOCount returns the number of unspent coins.
func (s *State) UTXOCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.utxos)
}

// Lookup returns the coin with the given ID, if it is unspent.
func (s *State) Lookup(id CoinID) (Coin, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.utxos[id]
	return c, ok
}

func compareHash(a, b crypto.Hash) int {
	for i := range a {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}
