package coin

import (
	"fmt"
	"sort"

	"smartchain/internal/codec"
	"smartchain/internal/crypto"
	"smartchain/internal/exec"
	"smartchain/internal/smr"
)

// Service adapts SMaRtCoin to the replicated-service interface consumed by
// the SMARTCHAIN node (the BFT-SMaRt invoke/execute pattern, paper §IV-A):
// batches of ordered requests in, deterministic per-request results out,
// with snapshot/restore for checkpoints and state transfer. With
// SetExecWorkers(n>1) the service executes non-conflicting transactions of
// a batch in parallel through the conflict-aware executor while preserving
// bit-identical results and post-state.
type Service struct {
	state *State
	// par is the conflict-aware parallel executor; nil means the exact
	// legacy sequential path. Configured once, before the service starts
	// executing (SetExecWorkers is not safe concurrently with ExecuteBatch).
	par *exec.Executor
}

// NewService creates a coin service with the given authorized minters
// (normally taken from the genesis block).
func NewService(minters []crypto.PublicKey) *Service {
	return &Service{state: NewState(minters)}
}

// State exposes the underlying UTXO state for queries.
func (s *Service) State() *State { return s.state }

// SetExecWorkers configures the parallel execution worker bound. 1 (or
// less) selects the exact legacy sequential path. Must be called before the
// service starts executing batches.
func (s *Service) SetExecWorkers(workers int) {
	if workers > 1 {
		s.par = exec.New(workers)
	} else {
		s.par = nil
	}
}

// ExecWorkers reports the configured worker bound (1 = sequential).
func (s *Service) ExecWorkers() int {
	if s.par == nil {
		return 1
	}
	return s.par.Workers()
}

// ExecStats snapshots the parallel executor's counters (zero when the
// sequential path is configured).
func (s *Service) ExecStats() exec.Stats {
	if s.par == nil {
		return exec.Stats{}
	}
	return s.par.Stats()
}

// ExecuteBatch executes each request operation in batch-order semantics and
// returns one result per request. Requests whose operations fail to parse
// yield a malformed result rather than aborting the batch: correct replicas
// must stay in lockstep even on garbage input. The coin rules do not
// consume the ordering context — SMaRtCoin state is a pure function of the
// transaction sequence — so bc is accepted and ignored.
//
// The batch holds the state's execution gate exclusively, so unordered
// queries and snapshots observe only block-boundary states. With a parallel
// executor configured, non-conflicting transactions run concurrently; the
// strata schedule keeps every conflicting pair (and every ordered query vs.
// the writes before it) in sequence, so results and post-state are
// bit-identical to the sequential path.
func (s *Service) ExecuteBatch(bc smr.BatchContext, reqs []smr.Request) [][]byte {
	s.state.execMu.Lock()
	defer s.state.execMu.Unlock()
	if s.par != nil {
		return s.par.Execute(bc, s, reqs)
	}
	results := make([][]byte, len(reqs))
	for i := range reqs {
		results[i] = s.ExecuteOne(bc, &reqs[i])
	}
	return results
}

// ExecuteOne applies a single ordered request (exec.Application). Callers
// must hold the state's execution gate (ExecuteBatch does); concurrent
// calls are safe only for requests with disjoint declared key sets.
func (s *Service) ExecuteOne(bc smr.BatchContext, req *smr.Request) []byte {
	if IsQuery(req.Op) {
		// An ordered read: the client's unordered read fell back to total
		// order (read floor unserveable at a quorum). Queries are
		// deterministic reads of the state as of this point in the
		// sequence — the strata schedule places them after every earlier
		// conflicting write and before every later one.
		return s.executeQueryLocked(*req)
	}
	tx, err := Decode(req.Op)
	if err != nil {
		return []byte{ResultErrMalformed}
	}
	// The request signer must be the transaction issuer; otherwise a
	// third party could replay someone's transaction under their own
	// request envelope.
	if !req.PubKey.Equal(tx.Issuer) {
		return []byte{ResultErrBadSignature}
	}
	return s.state.Apply(&tx)
}

// acctKey is the declared-conflict key of an owner account: balance queries
// read it, transactions write it for every owner whose coin set changes.
func acctKey(addr crypto.PublicKey) string { return "a" + string(addr) }

// coinKey is the declared-conflict key of one UTXO.
func coinKey(id CoinID) string { return "c" + string(id[:]) }

// RequestKeys derives the read/write key set of one ordered request
// (exec.Application): input coin IDs and created coin IDs as coin keys,
// plus the issuer's and every output owner's account key (balance queries
// read account keys). Requests whose result is a constant — undecodable
// payloads, issuer/signer mismatches — declare the empty set. A UTXO-count
// query reads the whole set, which cannot be enumerated, so it is a
// barrier. Declared writes are a superset of actual mutations: a
// transaction that fails validation mid-way writes nothing, which the
// superset covers conservatively.
func (s *Service) RequestKeys(req *smr.Request) exec.KeySet {
	if IsQuery(req.Op) {
		if req.Op[0] == QueryBalance {
			return exec.KeySet{Reads: []string{acctKey(crypto.PublicKey(req.Op[1:]))}}
		}
		return exec.KeySet{Barrier: true}
	}
	tx, err := Decode(req.Op)
	if err != nil {
		return exec.KeySet{} // constant ResultErrMalformed
	}
	if !req.PubKey.Equal(tx.Issuer) {
		return exec.KeySet{} // constant ResultErrBadSignature
	}
	writes := make([]string, 0, len(tx.Inputs)+2*len(tx.Outputs)+1)
	for _, in := range tx.Inputs {
		writes = append(writes, coinKey(in))
	}
	for i, id := range tx.OutputIDs() {
		writes = append(writes, coinKey(id))
		writes = append(writes, acctKey(tx.Outputs[i].Owner))
	}
	if tx.Type == TxSpend {
		// Consumed inputs change the issuer's balance.
		writes = append(writes, acctKey(tx.Issuer))
	}
	return exec.KeySet{Writes: writes}
}

// Read-only query operations, served over the consensus-free unordered
// path (ExecuteUnordered). Query payloads are tagged with a leading kind
// byte from a namespace disjoint from transaction encodings, so a query
// can never be mistaken for a state-changing transaction.
const (
	// QueryBalance asks for the total value owned by an address.
	QueryBalance byte = 0x51
	// QueryUTXOCount asks for the global number of unspent coins.
	QueryUTXOCount byte = 0x52
)

// EncodeBalanceQuery frames a balance query for addr.
func EncodeBalanceQuery(addr crypto.PublicKey) []byte {
	return append([]byte{QueryBalance}, addr...)
}

// EncodeUTXOCountQuery frames a UTXO-count query.
func EncodeUTXOCountQuery() []byte { return []byte{QueryUTXOCount} }

// IsQuery reports whether op is a read-only query payload. The query kind
// bytes are disjoint from transaction encodings, so the answer is
// unambiguous.
func IsQuery(op []byte) bool {
	return len(op) > 0 && (op[0] == QueryBalance || op[0] == QueryUTXOCount)
}

// ParseUint64Result decodes a numeric query result (balance, UTXO count).
func ParseUint64Result(result []byte) (uint64, error) {
	if len(result) != 9 || result[0] != ResultOK {
		return 0, fmt.Errorf("coin: bad query result")
	}
	d := codec.NewDecoder(result[1:])
	v := d.Uint64()
	if err := d.Finish(); err != nil {
		return 0, err
	}
	return v, nil
}

func uint64Result(v uint64) []byte {
	e := codec.NewEncoder(9)
	e.Byte(ResultOK)
	e.Uint64(v)
	return e.Bytes()
}

// executeQueryLocked answers a query from inside a batch execution: the
// caller holds the state's execution gate exclusively, so the public query
// entry points (which acquire it shared) would deadlock. The strata
// schedule guarantees no concurrently-executing transaction conflicts with
// the query's key set.
func (s *Service) executeQueryLocked(req smr.Request) []byte {
	if len(req.Op) == 0 {
		return []byte{ResultErrMalformed}
	}
	switch req.Op[0] {
	case QueryBalance:
		return uint64Result(s.state.balanceLocked(crypto.PublicKey(req.Op[1:])))
	case QueryUTXOCount:
		if len(req.Op) != 1 {
			return []byte{ResultErrMalformed}
		}
		return uint64Result(uint64(s.state.utxoCountLocked()))
	default:
		return []byte{ResultErrMalformed}
	}
}

// ExecuteUnordered implements the consensus-free read capability: queries
// are answered from the current local UTXO state. Results are
// deterministic functions of that state, so the client-side matching-reply
// quorum establishes that a Byzantine quorum of replicas agree on the
// answer. The state's execution gate makes every answer reflect a block
// boundary, matching the executed height the reply's view tag reports.
func (s *Service) ExecuteUnordered(req smr.Request) []byte {
	if len(req.Op) == 0 {
		return []byte{ResultErrMalformed}
	}
	switch req.Op[0] {
	case QueryBalance:
		return uint64Result(s.state.Balance(crypto.PublicKey(req.Op[1:])))
	case QueryUTXOCount:
		if len(req.Op) != 1 {
			return []byte{ResultErrMalformed}
		}
		return uint64Result(uint64(s.state.UTXOCount()))
	default:
		return []byte{ResultErrMalformed}
	}
}

// VerifyOp implements deep per-request verification used by the parallel
// verification pool: beyond the request envelope signature, the embedded
// transaction signature must verify. Queries carry no transaction — the
// request envelope signature (checked by the smr layer) is all the
// authentication a read needs, also when it arrives on the ordered path as
// a read-floor fallback.
func (s *Service) VerifyOp(req *smr.Request) bool {
	if IsQuery(req.Op) {
		return true
	}
	tx, err := Decode(req.Op)
	if err != nil {
		return false
	}
	return tx.VerifySig() == nil
}

// Snapshot serializes the full service state deterministically (UTXOs
// sorted by coin ID, minters sorted by key bytes).
func (s *Service) Snapshot() []byte {
	st := s.state
	st.execMu.RLock()
	defer st.execMu.RUnlock()

	var ids []CoinID
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for id := range sh.utxos {
			ids = append(ids, id)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(ids, func(i, j int) bool { return compareHash(ids[i], ids[j]) < 0 })

	st.mintersMu.RLock()
	minters := make([]string, 0, len(st.minters))
	for m := range st.minters {
		minters = append(minters, m)
	}
	st.mintersMu.RUnlock()
	sort.Strings(minters)

	e := codec.NewEncoder(64 + 80*len(ids))
	e.Uint32(uint32(len(minters)))
	for _, m := range minters {
		e.WriteBytes([]byte(m))
	}
	e.Uint32(uint32(len(ids)))
	for _, id := range ids {
		c, _ := st.getCoin(id)
		e.Bytes32(id)
		e.WriteBytes(c.Owner)
		e.Uint64(c.Value)
	}
	return e.Bytes()
}

// minSnapshotCoinSize is the smallest possible encoding of one coin in a
// snapshot: a 32-byte ID, a 4-byte owner length prefix, and an 8-byte
// value. Used to bound declared counts against the actual buffer before
// allocating.
const minSnapshotCoinSize = 32 + 4 + 8

// Restore replaces the service state with a snapshot produced by Snapshot.
// Declared element counts are validated against the remaining buffer length
// BEFORE any allocation sized by them: a corrupt or Byzantine state-transfer
// snapshot must not be able to force a multi-gigabyte pre-allocation that
// decoding would only reject afterwards.
func (s *Service) Restore(snapshot []byte) error {
	d := codec.NewDecoder(snapshot)
	nMinters := d.Uint32()
	// Each minter costs at least its 4-byte length prefix.
	if d.Err() != nil || nMinters > 1<<20 || int(nMinters) > d.Remaining()/4 {
		return fmt.Errorf("coin restore: bad minter count")
	}
	minters := make(map[string]bool, nMinters)
	for i := uint32(0); i < nMinters; i++ {
		minters[string(d.ReadBytes())] = true
	}
	nCoins := d.Uint32()
	if d.Err() != nil {
		return fmt.Errorf("coin restore: %w", d.Err())
	}
	if int(nCoins) > d.Remaining()/minSnapshotCoinSize {
		return fmt.Errorf("coin restore: coin count %d exceeds snapshot size", nCoins)
	}
	utxos := make(map[CoinID]Coin, nCoins)
	for i := uint32(0); i < nCoins; i++ {
		var c Coin
		c.ID = d.Bytes32()
		c.Owner = crypto.PublicKey(d.ReadBytesCopy())
		c.Value = d.Uint64()
		utxos[c.ID] = c
	}
	if err := d.Finish(); err != nil {
		return fmt.Errorf("coin restore: %w", err)
	}

	st := s.state
	st.execMu.Lock()
	defer st.execMu.Unlock()
	st.mintersMu.Lock()
	st.minters = minters
	st.mintersMu.Unlock()
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		sh.utxos = make(map[CoinID]Coin)
		sh.mu.Unlock()
	}
	for _, c := range utxos {
		st.putCoin(c)
	}
	return nil
}

// Prepopulate injects synthetic UTXOs directly into the state. The Fig. 7
// experiment preloads millions of UTXOs to give the service a realistic
// state size; doing that through MINT transactions would dominate setup
// time without changing behaviour.
func (s *Service) Prepopulate(owner crypto.PublicKey, count int, value uint64) []CoinID {
	st := s.state
	st.execMu.Lock()
	defer st.execMu.Unlock()
	ids := make([]CoinID, 0, count)
	for i := 0; i < count; i++ {
		e := codec.NewEncoder(12)
		e.String("prepop")
		e.Uint32(uint32(i))
		e.WriteBytes(owner)
		id := crypto.HashBytes(e.Bytes())
		st.putCoin(Coin{ID: id, Owner: owner, Value: value})
		ids = append(ids, id)
	}
	return ids
}

// ParseResult decodes a result produced by ExecuteBatch into the status
// code and created coin IDs.
func ParseResult(result []byte) (code byte, coins []CoinID, err error) {
	if len(result) == 0 {
		return 0, nil, fmt.Errorf("coin: empty result")
	}
	code = result[0]
	rest := result[1:]
	if len(rest)%crypto.HashSize != 0 {
		return 0, nil, fmt.Errorf("coin: ragged result")
	}
	for len(rest) > 0 {
		coins = append(coins, crypto.HashFromBytes(rest[:crypto.HashSize]))
		rest = rest[crypto.HashSize:]
	}
	return code, coins, nil
}
