package coin

import (
	"fmt"
	"sort"

	"smartchain/internal/codec"
	"smartchain/internal/crypto"
	"smartchain/internal/smr"
)

// Service adapts SMaRtCoin to the replicated-service interface consumed by
// the SMARTCHAIN node (the BFT-SMaRt invoke/execute pattern, paper §IV-A):
// batches of ordered requests in, deterministic per-request results out,
// with snapshot/restore for checkpoints and state transfer.
type Service struct {
	state *State
}

// NewService creates a coin service with the given authorized minters
// (normally taken from the genesis block).
func NewService(minters []crypto.PublicKey) *Service {
	return &Service{state: NewState(minters)}
}

// State exposes the underlying UTXO state for queries.
func (s *Service) State() *State { return s.state }

// ExecuteBatch executes each request operation in order and returns one
// result per request. Requests whose operations fail to parse yield a
// malformed result rather than aborting the batch: correct replicas must
// stay in lockstep even on garbage input. The coin rules do not consume
// the ordering context — SMaRtCoin state is a pure function of the
// transaction sequence — so bc is accepted and ignored.
func (s *Service) ExecuteBatch(bc smr.BatchContext, reqs []smr.Request) [][]byte {
	results := make([][]byte, len(reqs))
	for i := range reqs {
		if IsQuery(reqs[i].Op) {
			// An ordered read: the client's unordered read fell back to
			// total order (read floor unserveable at a quorum). Queries
			// are deterministic reads of the state as of this point in the
			// sequence, so executing them inside the batch is safe on
			// every replica.
			results[i] = s.ExecuteUnordered(reqs[i])
			continue
		}
		tx, err := Decode(reqs[i].Op)
		if err != nil {
			results[i] = []byte{ResultErrMalformed}
			continue
		}
		// The request signer must be the transaction issuer; otherwise a
		// third party could replay someone's transaction under their own
		// request envelope.
		if !reqs[i].PubKey.Equal(tx.Issuer) {
			results[i] = []byte{ResultErrBadSignature}
			continue
		}
		results[i] = s.state.Apply(&tx)
	}
	return results
}

// Read-only query operations, served over the consensus-free unordered
// path (ExecuteUnordered). Query payloads are tagged with a leading kind
// byte from a namespace disjoint from transaction encodings, so a query
// can never be mistaken for a state-changing transaction.
const (
	// QueryBalance asks for the total value owned by an address.
	QueryBalance byte = 0x51
	// QueryUTXOCount asks for the global number of unspent coins.
	QueryUTXOCount byte = 0x52
)

// EncodeBalanceQuery frames a balance query for addr.
func EncodeBalanceQuery(addr crypto.PublicKey) []byte {
	return append([]byte{QueryBalance}, addr...)
}

// EncodeUTXOCountQuery frames a UTXO-count query.
func EncodeUTXOCountQuery() []byte { return []byte{QueryUTXOCount} }

// IsQuery reports whether op is a read-only query payload. The query kind
// bytes are disjoint from transaction encodings, so the answer is
// unambiguous.
func IsQuery(op []byte) bool {
	return len(op) > 0 && (op[0] == QueryBalance || op[0] == QueryUTXOCount)
}

// ParseUint64Result decodes a numeric query result (balance, UTXO count).
func ParseUint64Result(result []byte) (uint64, error) {
	if len(result) != 9 || result[0] != ResultOK {
		return 0, fmt.Errorf("coin: bad query result")
	}
	d := codec.NewDecoder(result[1:])
	v := d.Uint64()
	if err := d.Finish(); err != nil {
		return 0, err
	}
	return v, nil
}

func uint64Result(v uint64) []byte {
	e := codec.NewEncoder(9)
	e.Byte(ResultOK)
	e.Uint64(v)
	return e.Bytes()
}

// ExecuteUnordered implements the consensus-free read capability: queries
// are answered from the current local UTXO state. Results are
// deterministic functions of that state, so the client-side matching-reply
// quorum establishes that a Byzantine quorum of replicas agree on the
// answer.
func (s *Service) ExecuteUnordered(req smr.Request) []byte {
	if len(req.Op) == 0 {
		return []byte{ResultErrMalformed}
	}
	switch req.Op[0] {
	case QueryBalance:
		return uint64Result(s.state.Balance(crypto.PublicKey(req.Op[1:])))
	case QueryUTXOCount:
		if len(req.Op) != 1 {
			return []byte{ResultErrMalformed}
		}
		return uint64Result(uint64(s.state.UTXOCount()))
	default:
		return []byte{ResultErrMalformed}
	}
}

// VerifyOp implements deep per-request verification used by the parallel
// verification pool: beyond the request envelope signature, the embedded
// transaction signature must verify. Queries carry no transaction — the
// request envelope signature (checked by the smr layer) is all the
// authentication a read needs, also when it arrives on the ordered path as
// a read-floor fallback.
func (s *Service) VerifyOp(req *smr.Request) bool {
	if IsQuery(req.Op) {
		return true
	}
	tx, err := Decode(req.Op)
	if err != nil {
		return false
	}
	return tx.VerifySig() == nil
}

// Snapshot serializes the full service state deterministically (UTXOs
// sorted by coin ID, minters sorted by key bytes).
func (s *Service) Snapshot() []byte {
	st := s.state
	st.mu.RLock()
	defer st.mu.RUnlock()

	ids := make([]CoinID, 0, len(st.utxos))
	for id := range st.utxos {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return compareHash(ids[i], ids[j]) < 0 })

	minters := make([]string, 0, len(st.minters))
	for m := range st.minters {
		minters = append(minters, m)
	}
	sort.Strings(minters)

	e := codec.NewEncoder(64 + 80*len(ids))
	e.Uint32(uint32(len(minters)))
	for _, m := range minters {
		e.WriteBytes([]byte(m))
	}
	e.Uint32(uint32(len(ids)))
	for _, id := range ids {
		c := st.utxos[id]
		e.Bytes32(id)
		e.WriteBytes(c.Owner)
		e.Uint64(c.Value)
	}
	return e.Bytes()
}

// Restore replaces the service state with a snapshot produced by Snapshot.
func (s *Service) Restore(snapshot []byte) error {
	d := codec.NewDecoder(snapshot)
	nMinters := d.Uint32()
	if d.Err() != nil || nMinters > 1<<20 {
		return fmt.Errorf("coin restore: bad minter count")
	}
	minters := make(map[string]bool, nMinters)
	for i := uint32(0); i < nMinters; i++ {
		minters[string(d.ReadBytes())] = true
	}
	nCoins := d.Uint32()
	if d.Err() != nil {
		return fmt.Errorf("coin restore: %w", d.Err())
	}
	utxos := make(map[CoinID]Coin, nCoins)
	for i := uint32(0); i < nCoins; i++ {
		var c Coin
		c.ID = d.Bytes32()
		c.Owner = crypto.PublicKey(d.ReadBytesCopy())
		c.Value = d.Uint64()
		utxos[c.ID] = c
	}
	if err := d.Finish(); err != nil {
		return fmt.Errorf("coin restore: %w", err)
	}
	st := s.state
	st.mu.Lock()
	st.minters = minters
	st.utxos = utxos
	st.mu.Unlock()
	return nil
}

// Prepopulate injects synthetic UTXOs directly into the state. The Fig. 7
// experiment preloads millions of UTXOs to give the service a realistic
// state size; doing that through MINT transactions would dominate setup
// time without changing behaviour.
func (s *Service) Prepopulate(owner crypto.PublicKey, count int, value uint64) []CoinID {
	st := s.state
	st.mu.Lock()
	defer st.mu.Unlock()
	ids := make([]CoinID, 0, count)
	for i := 0; i < count; i++ {
		e := codec.NewEncoder(12)
		e.String("prepop")
		e.Uint32(uint32(i))
		e.WriteBytes(owner)
		id := crypto.HashBytes(e.Bytes())
		st.utxos[id] = Coin{ID: id, Owner: owner, Value: value}
		ids = append(ids, id)
	}
	return ids
}

// ParseResult decodes a result produced by ExecuteBatch into the status
// code and created coin IDs.
func ParseResult(result []byte) (code byte, coins []CoinID, err error) {
	if len(result) == 0 {
		return 0, nil, fmt.Errorf("coin: empty result")
	}
	code = result[0]
	rest := result[1:]
	if len(rest)%crypto.HashSize != 0 {
		return 0, nil, fmt.Errorf("coin: ragged result")
	}
	for len(rest) > 0 {
		coins = append(coins, crypto.HashFromBytes(rest[:crypto.HashSize]))
		rest = rest[crypto.HashSize:]
	}
	return code, coins, nil
}
