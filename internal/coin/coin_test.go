package coin

import (
	"bytes"
	"testing"
	"testing/quick"

	"smartchain/internal/crypto"
	"smartchain/internal/smr"
)

func minterKey(i int64) *crypto.KeyPair { return crypto.SeededKeyPair("minter", i) }
func userKey(i int64) *crypto.KeyPair   { return crypto.SeededKeyPair("user", i) }

func newTestState() (*State, *crypto.KeyPair) {
	m := minterKey(0)
	return NewState([]crypto.PublicKey{m.Public()}), m
}

func mustMint(t *testing.T, s *State, key *crypto.KeyPair, nonce uint64, values ...uint64) []CoinID {
	t.Helper()
	tx, err := NewMint(key, nonce, values...)
	if err != nil {
		t.Fatalf("mint: %v", err)
	}
	res := s.Apply(&tx)
	code, coins, err := ParseResult(res)
	if err != nil || code != ResultOK {
		t.Fatalf("mint result: code=%d err=%v", code, err)
	}
	return coins
}

func TestMintCreatesCoins(t *testing.T) {
	s, m := newTestState()
	coins := mustMint(t, s, m, 1, 100, 50)
	if len(coins) != 2 {
		t.Fatalf("got %d coins", len(coins))
	}
	if s.Balance(m.Public()) != 150 {
		t.Fatalf("balance: %d", s.Balance(m.Public()))
	}
	if s.TotalSupply() != 150 || s.UTXOCount() != 2 {
		t.Fatalf("supply=%d count=%d", s.TotalSupply(), s.UTXOCount())
	}
	c, ok := s.Lookup(coins[0])
	if !ok || c.Value != 100 || !c.Owner.Equal(m.Public()) {
		t.Fatalf("lookup: %+v ok=%v", c, ok)
	}
}

func TestMintUnauthorized(t *testing.T) {
	s, _ := newTestState()
	intruder := userKey(1)
	tx, err := NewMint(intruder, 1, 100)
	if err != nil {
		t.Fatalf("mint: %v", err)
	}
	res := s.Apply(&tx)
	if res[0] != ResultErrUnauthorized {
		t.Fatalf("code: %d", res[0])
	}
	if s.TotalSupply() != 0 {
		t.Fatal("unauthorized mint must not create value")
	}
}

func TestSpendTransfersOwnership(t *testing.T) {
	s, m := newTestState()
	alice, bob := userKey(1), userKey(2)
	coins := mustMint(t, s, m, 1, 100)

	// minter → alice
	tx, err := NewSpend(m, 2, coins, []Output{{Owner: alice.Public(), Value: 100}})
	if err != nil {
		t.Fatalf("spend: %v", err)
	}
	res := s.Apply(&tx)
	code, newCoins, _ := ParseResult(res)
	if code != ResultOK || len(newCoins) != 1 {
		t.Fatalf("spend result: %d %d", code, len(newCoins))
	}
	if s.Balance(alice.Public()) != 100 || s.Balance(m.Public()) != 0 {
		t.Fatalf("balances: alice=%d minter=%d", s.Balance(alice.Public()), s.Balance(m.Public()))
	}

	// alice → bob (60) + change to alice (40)
	tx2, err := NewSpend(alice, 1, newCoins, []Output{
		{Owner: bob.Public(), Value: 60},
		{Owner: alice.Public(), Value: 40},
	})
	if err != nil {
		t.Fatalf("spend2: %v", err)
	}
	res2 := s.Apply(&tx2)
	if res2[0] != ResultOK {
		t.Fatalf("spend2 code: %d", res2[0])
	}
	if s.Balance(bob.Public()) != 60 || s.Balance(alice.Public()) != 40 {
		t.Fatalf("balances: bob=%d alice=%d", s.Balance(bob.Public()), s.Balance(alice.Public()))
	}
	if s.TotalSupply() != 100 {
		t.Fatalf("supply must be conserved: %d", s.TotalSupply())
	}
}

func TestSpendRejectsNonOwner(t *testing.T) {
	s, m := newTestState()
	coins := mustMint(t, s, m, 1, 100)
	thief := userKey(9)
	tx, err := NewSpend(thief, 1, coins, []Output{{Owner: thief.Public(), Value: 100}})
	if err != nil {
		t.Fatalf("spend: %v", err)
	}
	if res := s.Apply(&tx); res[0] != ResultErrNotOwner {
		t.Fatalf("code: %d", res[0])
	}
	if s.Balance(m.Public()) != 100 {
		t.Fatal("theft must not move funds")
	}
}

func TestSpendRejectsDoubleSpend(t *testing.T) {
	s, m := newTestState()
	coins := mustMint(t, s, m, 1, 100)
	spend := func() byte {
		tx, err := NewSpend(m, 2, coins, []Output{{Owner: m.Public(), Value: 100}})
		if err != nil {
			t.Fatalf("spend: %v", err)
		}
		return s.Apply(&tx)[0]
	}
	if code := spend(); code != ResultOK {
		t.Fatalf("first spend: %d", code)
	}
	if code := spend(); code != ResultErrUnknownCoin {
		t.Fatalf("second spend of same coin: %d", code)
	}
	// Duplicate input inside a single tx, on a live coin.
	fresh := mustMint(t, s, m, 4, 100)
	tx, err := NewSpend(m, 3, []CoinID{fresh[0], fresh[0]}, []Output{{Owner: m.Public(), Value: 200}})
	if err != nil {
		t.Fatalf("spend: %v", err)
	}
	if res := s.Apply(&tx); res[0] != ResultErrDoubleSpend {
		t.Fatalf("intra-tx double spend: %d", res[0])
	}
}

func TestSpendRejectsValueMismatch(t *testing.T) {
	s, m := newTestState()
	coins := mustMint(t, s, m, 1, 100)
	for _, outValue := range []uint64{99, 101} {
		tx, err := NewSpend(m, 2, coins, []Output{{Owner: m.Public(), Value: outValue}})
		if err != nil {
			t.Fatalf("spend: %v", err)
		}
		if res := s.Apply(&tx); res[0] != ResultErrValueMismatch {
			t.Fatalf("out=%d code: %d", outValue, res[0])
		}
	}
}

func TestSpendUnknownCoin(t *testing.T) {
	s, _ := newTestState()
	u := userKey(1)
	fake := crypto.HashBytes([]byte("no-such-coin"))
	tx, err := NewSpend(u, 1, []CoinID{fake}, []Output{{Owner: u.Public(), Value: 1}})
	if err != nil {
		t.Fatalf("spend: %v", err)
	}
	if res := s.Apply(&tx); res[0] != ResultErrUnknownCoin {
		t.Fatalf("code: %d", res[0])
	}
}

func TestMalformedTransactions(t *testing.T) {
	s, m := newTestState()
	// Mint with no outputs.
	mintNoOut, err := NewMint(m, 1)
	if err != nil {
		t.Fatalf("mint: %v", err)
	}
	if res := s.Apply(&mintNoOut); res[0] != ResultErrMalformed {
		t.Fatalf("empty mint: %d", res[0])
	}
	// Spend with no inputs.
	spendNoIn, err := NewSpend(m, 1, nil, []Output{{Owner: m.Public(), Value: 1}})
	if err != nil {
		t.Fatalf("spend: %v", err)
	}
	if res := s.Apply(&spendNoIn); res[0] != ResultErrMalformed {
		t.Fatalf("inputless spend: %d", res[0])
	}
	// Unknown type.
	bad := Tx{Type: TxType(99)}
	if res := s.Apply(&bad); res[0] != ResultErrMalformed {
		t.Fatalf("unknown type: %d", res[0])
	}
}

func TestTxSignatureVerification(t *testing.T) {
	m := minterKey(0)
	tx, err := NewMint(m, 1, 10)
	if err != nil {
		t.Fatalf("mint: %v", err)
	}
	if err := tx.VerifySig(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	tampered := tx
	tampered.Nonce = 2
	if err := tampered.VerifySig(); err == nil {
		t.Fatal("tampered nonce must fail")
	}
	tampered = tx
	tampered.Outputs = []Output{{Owner: m.Public(), Value: 9999}}
	if err := tampered.VerifySig(); err == nil {
		t.Fatal("tampered outputs must fail")
	}
}

func TestTxEncodeDecodeRoundTrip(t *testing.T) {
	m := minterKey(0)
	u := userKey(1)
	in := crypto.HashBytes([]byte("input"))
	tx, err := NewSpend(m, 7, []CoinID{in}, []Output{
		{Owner: u.Public(), Value: 42},
		{Owner: m.Public(), Value: 8},
	})
	if err != nil {
		t.Fatalf("spend: %v", err)
	}
	got, err := Decode(tx.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Type != TxSpend || !got.Issuer.Equal(m.Public()) || got.Nonce != 7 ||
		len(got.Inputs) != 1 || got.Inputs[0] != in ||
		len(got.Outputs) != 2 || got.Outputs[0].Value != 42 {
		t.Fatalf("round trip: %+v", got)
	}
	if err := got.VerifySig(); err != nil {
		t.Fatalf("decoded tx must verify: %v", err)
	}
	if got.Hash() != tx.Hash() {
		t.Fatal("hash must survive round trip")
	}
	if _, err := Decode([]byte("garbage")); err == nil {
		t.Fatal("garbage must not decode")
	}
}

func TestRequestSizesMatchPaperBallpark(t *testing.T) {
	// Paper §IV-B: MINT requests ≈180 B, SPEND ≈310 B (single input,
	// single output). Our encodings should land within 2× of those.
	m := minterKey(0)
	mint, err := NewMint(m, 1, 100)
	if err != nil {
		t.Fatalf("mint: %v", err)
	}
	mintReq, err := smr.NewSignedRequest(1, 1, mint.Encode(), m)
	if err != nil {
		t.Fatalf("req: %v", err)
	}
	mintSize := len(mintReq.Encode())
	if mintSize < 90 || mintSize > 360 {
		t.Fatalf("mint request size %d out of plausible range", mintSize)
	}
	spend, err := NewSpend(m, 2, []CoinID{crypto.HashBytes([]byte("c"))}, []Output{{Owner: m.Public(), Value: 100}})
	if err != nil {
		t.Fatalf("spend: %v", err)
	}
	spendReq, err := smr.NewSignedRequest(1, 2, spend.Encode(), m)
	if err != nil {
		t.Fatalf("req: %v", err)
	}
	spendSize := len(spendReq.Encode())
	if spendSize < 155 || spendSize > 620 {
		t.Fatalf("spend request size %d out of plausible range", spendSize)
	}
	if spendSize <= mintSize {
		t.Fatal("spend requests must be larger than mint requests")
	}
}

func TestValueConservationProperty(t *testing.T) {
	// Property: no sequence of SPEND transactions changes total supply,
	// regardless of how they are constructed.
	s, m := newTestState()
	mustMint(t, s, m, 1, 100, 200, 300)
	initial := s.TotalSupply()

	f := func(splits []uint8) bool {
		coins := s.CoinsOf(m.Public())
		if len(coins) == 0 {
			return s.TotalSupply() == initial
		}
		c := coins[0]
		// Split the coin into up to 3 outputs that sum to its value.
		n := 1
		if len(splits) > 0 {
			n = int(splits[0]%3) + 1
		}
		outs := make([]Output, 0, n)
		remaining := c.Value
		for i := 0; i < n-1; i++ {
			part := remaining / 2
			outs = append(outs, Output{Owner: m.Public(), Value: part})
			remaining -= part
		}
		outs = append(outs, Output{Owner: m.Public(), Value: remaining})
		tx, err := NewSpend(m, uint64(len(splits))+10, []CoinID{c.ID}, outs)
		if err != nil {
			return false
		}
		res := s.Apply(&tx)
		return res[0] == ResultOK && s.TotalSupply() == initial
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestServiceExecuteBatch(t *testing.T) {
	m := minterKey(0)
	svc := NewService([]crypto.PublicKey{m.Public()})

	mint, err := NewMint(m, 1, 500)
	if err != nil {
		t.Fatalf("mint: %v", err)
	}
	req, err := smr.NewSignedRequest(1, 1, mint.Encode(), m)
	if err != nil {
		t.Fatalf("req: %v", err)
	}
	// A request whose envelope key differs from the tx issuer.
	intruder := userKey(5)
	hijack, err := smr.NewSignedRequest(2, 1, mint.Encode(), intruder)
	if err != nil {
		t.Fatalf("req: %v", err)
	}
	// A request with garbage op.
	garbage, err := smr.NewSignedRequest(3, 1, []byte("junk"), intruder)
	if err != nil {
		t.Fatalf("req: %v", err)
	}

	results := svc.ExecuteBatch(smr.BatchContext{}, []smr.Request{req, hijack, garbage})
	if results[0][0] != ResultOK {
		t.Fatalf("mint result: %d", results[0][0])
	}
	if results[1][0] != ResultErrBadSignature {
		t.Fatalf("hijack result: %d", results[1][0])
	}
	if results[2][0] != ResultErrMalformed {
		t.Fatalf("garbage result: %d", results[2][0])
	}
	if svc.State().Balance(m.Public()) != 500 {
		t.Fatalf("balance: %d", svc.State().Balance(m.Public()))
	}
}

func TestServiceVerifyOp(t *testing.T) {
	m := minterKey(0)
	svc := NewService([]crypto.PublicKey{m.Public()})
	mint, err := NewMint(m, 1, 5)
	if err != nil {
		t.Fatalf("mint: %v", err)
	}
	req, err := smr.NewSignedRequest(1, 1, mint.Encode(), m)
	if err != nil {
		t.Fatalf("req: %v", err)
	}
	if !svc.VerifyOp(&req) {
		t.Fatal("valid op must verify")
	}
	bad := req
	tampered := mint
	tampered.Sig = make([]byte, crypto.SignatureSize)
	bad.Op = tampered.Encode()
	if svc.VerifyOp(&bad) {
		t.Fatal("forged tx sig must not verify")
	}
	bad.Op = []byte("junk")
	if svc.VerifyOp(&bad) {
		t.Fatal("garbage op must not verify")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	m := minterKey(0)
	svc := NewService([]crypto.PublicKey{m.Public()})
	alice := userKey(1)
	mint, err := NewMint(m, 1, 100, 200)
	if err != nil {
		t.Fatalf("mint: %v", err)
	}
	svc.State().Apply(&mint)
	coins := svc.State().CoinsOf(m.Public())
	spend, err := NewSpend(m, 2, []CoinID{coins[0].ID}, []Output{{Owner: alice.Public(), Value: coins[0].Value}})
	if err != nil {
		t.Fatalf("spend: %v", err)
	}
	svc.State().Apply(&spend)

	snap := svc.Snapshot()
	// Snapshots are deterministic.
	if !bytes.Equal(snap, svc.Snapshot()) {
		t.Fatal("snapshot must be deterministic")
	}

	restored := NewService(nil)
	if err := restored.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if restored.State().TotalSupply() != svc.State().TotalSupply() {
		t.Fatal("supply differs after restore")
	}
	if restored.State().Balance(alice.Public()) != svc.State().Balance(alice.Public()) {
		t.Fatal("balance differs after restore")
	}
	if !bytes.Equal(restored.Snapshot(), snap) {
		t.Fatal("restored snapshot differs")
	}
	// Minters carried over: the original minter can still mint.
	mint2, err := NewMint(m, 3, 5)
	if err != nil {
		t.Fatalf("mint: %v", err)
	}
	if res := restored.State().Apply(&mint2); res[0] != ResultOK {
		t.Fatalf("minting after restore: %d", res[0])
	}
	if err := restored.Restore([]byte("garbage")); err == nil {
		t.Fatal("garbage snapshot must not restore")
	}
}

func TestPrepopulate(t *testing.T) {
	svc := NewService(nil)
	owner := userKey(1)
	ids := svc.Prepopulate(owner.Public(), 1000, 7)
	if len(ids) != 1000 {
		t.Fatalf("ids: %d", len(ids))
	}
	if svc.State().UTXOCount() != 1000 {
		t.Fatalf("count: %d", svc.State().UTXOCount())
	}
	if svc.State().Balance(owner.Public()) != 7000 {
		t.Fatalf("balance: %d", svc.State().Balance(owner.Public()))
	}
	// Prepopulated coins are spendable.
	tx, err := NewSpend(owner, 1, []CoinID{ids[0]}, []Output{{Owner: owner.Public(), Value: 7}})
	if err != nil {
		t.Fatalf("spend: %v", err)
	}
	if res := svc.State().Apply(&tx); res[0] != ResultOK {
		t.Fatalf("spend prepopulated: %d", res[0])
	}
}

func TestParseResultErrors(t *testing.T) {
	if _, _, err := ParseResult(nil); err == nil {
		t.Fatal("empty result must error")
	}
	if _, _, err := ParseResult(make([]byte, 10)); err == nil {
		t.Fatal("ragged result must error")
	}
	code, coins, err := ParseResult([]byte{ResultOK})
	if err != nil || code != ResultOK || len(coins) != 0 {
		t.Fatalf("bare code: %d %d %v", code, len(coins), err)
	}
}
