// Package workload generates the SMaRtCoin client workloads of the paper's
// evaluation (§VI-A): a MINT phase that creates coins, followed by a SPEND
// phase of single-input single-output transfers. Scripts are deterministic
// per client so every run of an experiment issues identical transactions.
package workload

import (
	"math/rand"
	"sync"

	"smartchain/internal/coin"
	"smartchain/internal/crypto"
)

// Script is a closed-loop client's transaction source: NextOp consumes the
// previous operation's result (to learn created coin IDs) and produces the
// next operation payload.
type Script interface {
	// Key returns the client's signing identity.
	Key() *crypto.KeyPair
	// NextOp returns the next application operation. prev is the result of
	// the previous operation (nil on the first call). ok=false means the
	// script is exhausted.
	NextOp(prev []byte) (op []byte, ok bool)
}

// CoinScript is the paper's two-phase workload for one client: mint a pool
// of coins, then spend them to fresh addresses one at a time. When the pool
// runs dry it re-mints, so the script never exhausts (closed-loop load for
// a fixed duration) — unless WithSpendOnly makes exhaustion the signal that
// the pure-SPEND phase is over.
type CoinScript struct {
	key     *crypto.KeyPair
	sink    crypto.PublicKey // spend recipient (a distinct per-client address)
	mu      sync.Mutex
	nonce   uint64
	pool    []coin.CoinID
	value   uint64
	phase   byte // 1 = minting, 2 = spending
	mintQty int
	// spendOnly stops the script (NextOp ok=false) instead of re-minting
	// when the pool runs dry: phase experiments that measure SPEND alone
	// after the seeded MINT, e.g. the execpar contention sweeps.
	spendOnly bool
	// recipients, when non-nil, draws each SPEND's recipient from a shared
	// address universe instead of the private per-client sink — the
	// contention knob: skewed draws concentrate writes on hot accounts.
	recipients func() crypto.PublicKey
}

// Option configures a CoinScript.
type Option func(*CoinScript)

// WithMintBatch sets how many coins one MINT creates (default 16).
func WithMintBatch(q int) Option {
	return func(s *CoinScript) { s.mintQty = q }
}

// WithSpendOnly makes the script exhaust (NextOp returns ok=false) when the
// minted pool runs dry instead of re-minting: after the seeded MINT phase
// every remaining operation is a SPEND, which is what contention sweeps
// want to measure in isolation.
func WithSpendOnly() Option {
	return func(s *CoinScript) { s.spendOnly = true }
}

// WithRecipientSkew draws each SPEND's recipient from a shared universe of
// `universe` sink addresses (derived from label, so every client of an
// experiment shares them) instead of the client's private sink. skew
// selects the distribution: 0 draws uniformly — cross-client conflicts stay
// rare, the low-contention baseline; skew > 1 draws Zipf-distributed with
// that exponent, concentrating spends on a few hot accounts so write-write
// conflicts (and thus execution strata) climb with the skew. Draws are
// deterministic per (label, client), keeping runs reproducible.
func WithRecipientSkew(label string, client int64, universe int, skew float64) Option {
	return func(s *CoinScript) {
		if universe < 1 {
			universe = 1
		}
		addrs := make([]crypto.PublicKey, universe)
		for i := range addrs {
			addrs[i] = crypto.SeededKeyPair(label+"/hot", int64(i)).Public()
		}
		rng := rand.New(rand.NewSource(client*2654435761 + 1))
		if skew > 1 {
			z := rand.NewZipf(rng, skew, 1, uint64(universe-1))
			s.recipients = func() crypto.PublicKey { return addrs[z.Uint64()] }
			return
		}
		s.recipients = func() crypto.PublicKey { return addrs[rng.Intn(universe)] }
	}
}

// NewCoinScript builds the script for client i. Clients derive their keys
// from (label, i) so the workload is reproducible; all clients are
// authorized minters in the experiments (their keys go into genesis).
func NewCoinScript(label string, i int64, opts ...Option) *CoinScript {
	s := &CoinScript{
		key:     crypto.SeededKeyPair(label+"/client", i),
		sink:    crypto.SeededKeyPair(label+"/sink", i).Public(),
		value:   100,
		phase:   1,
		mintQty: 16,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Key implements Script.
func (s *CoinScript) Key() *crypto.KeyPair { return s.key }

// MinterKeys returns the minter identities for clients 0..n-1, for genesis
// authorization.
func MinterKeys(label string, n int) []crypto.PublicKey {
	out := make([]crypto.PublicKey, n)
	for i := 0; i < n; i++ {
		out[i] = crypto.SeededKeyPair(label+"/client", int64(i)).Public()
	}
	return out
}

// NextOp implements Script.
func (s *CoinScript) NextOp(prev []byte) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Absorb coins created by the previous op.
	if prev != nil {
		if code, coins, err := coin.ParseResult(prev); err == nil && code == coin.ResultOK {
			s.pool = append(s.pool, coins...)
		}
	}
	s.nonce++
	if s.phase == 1 {
		s.phase = 2
		values := make([]uint64, s.mintQty)
		for i := range values {
			values[i] = s.value
		}
		tx, err := coin.NewMint(s.key, s.nonce, values...)
		if err != nil {
			return nil, false
		}
		return tx.Encode(), true
	}
	if len(s.pool) == 0 {
		if s.spendOnly {
			// Pure-SPEND phase over: exhaust instead of re-minting.
			s.nonce--
			return nil, false
		}
		// Pool dry: mint again.
		s.phase = 1
		s.nonce--
		s.mu.Unlock()
		op, ok := s.NextOp(nil)
		s.mu.Lock()
		return op, ok
	}
	in := s.pool[0]
	s.pool = s.pool[1:]
	sink := s.sink
	if s.recipients != nil {
		sink = s.recipients()
	}
	tx, err := coin.NewSpend(s.key, s.nonce, []coin.CoinID{in}, []coin.Output{{Owner: sink, Value: s.value}})
	if err != nil {
		return nil, false
	}
	return tx.Encode(), true
}

// BalanceQueryScript issues only read-only balance queries for the
// client's own address — the unordered (consensus-free) read workload.
// Queries are prev-independent, so the script also suits open-loop async
// pipelines.
type BalanceQueryScript struct {
	key *crypto.KeyPair
	op  []byte
}

// NewBalanceQueryScript builds a query script for client i.
func NewBalanceQueryScript(label string, i int64) *BalanceQueryScript {
	key := crypto.SeededKeyPair(label+"/client", i)
	return &BalanceQueryScript{key: key, op: coin.EncodeBalanceQuery(key.Public())}
}

// Key implements Script.
func (s *BalanceQueryScript) Key() *crypto.KeyPair { return s.key }

// NextOp implements Script.
func (s *BalanceQueryScript) NextOp(prev []byte) ([]byte, bool) { return s.op, true }

// MintOnlyScript issues only MINT transactions (the MINT rows of Table I).
type MintOnlyScript struct {
	key   *crypto.KeyPair
	mu    sync.Mutex
	nonce uint64
}

// NewMintOnlyScript builds a mint-only script for client i.
func NewMintOnlyScript(label string, i int64) *MintOnlyScript {
	return &MintOnlyScript{key: crypto.SeededKeyPair(label+"/client", i)}
}

// Key implements Script.
func (s *MintOnlyScript) Key() *crypto.KeyPair { return s.key }

// NextOp implements Script.
func (s *MintOnlyScript) NextOp(prev []byte) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nonce++
	tx, err := coin.NewMint(s.key, s.nonce, 100)
	if err != nil {
		return nil, false
	}
	return tx.Encode(), true
}
