package workload

import (
	"testing"

	"smartchain/internal/coin"
	"smartchain/internal/crypto"
)

func TestCoinScriptMintThenSpend(t *testing.T) {
	s := NewCoinScript("wl-test", 1, WithMintBatch(4))
	svc := coin.NewService(MinterKeys("wl-test", 2))

	// First op is a MINT of 4 coins.
	op, ok := s.NextOp(nil)
	if !ok {
		t.Fatal("script exhausted immediately")
	}
	tx, err := coin.Decode(op)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if tx.Type != coin.TxMint || len(tx.Outputs) != 4 {
		t.Fatalf("first op: type=%d outputs=%d", tx.Type, len(tx.Outputs))
	}
	res := svc.State().Apply(&tx)
	if res[0] != coin.ResultOK {
		t.Fatalf("mint result: %d", res[0])
	}

	// Next ops are single-input single-output SPENDs consuming the pool.
	for i := 0; i < 4; i++ {
		op, ok = s.NextOp(res)
		if !ok {
			t.Fatalf("script exhausted at spend %d", i)
		}
		res = nil // results only matter after mints
		stx, err := coin.Decode(op)
		if err != nil {
			t.Fatalf("decode spend %d: %v", i, err)
		}
		if stx.Type != coin.TxSpend || len(stx.Inputs) != 1 || len(stx.Outputs) != 1 {
			t.Fatalf("spend %d shape: in=%d out=%d", i, len(stx.Inputs), len(stx.Outputs))
		}
		applied := svc.State().Apply(&stx)
		if applied[0] != coin.ResultOK {
			t.Fatalf("spend %d result: %d", i, applied[0])
		}
	}

	// Pool dry: the script re-mints.
	op, ok = s.NextOp(nil)
	if !ok {
		t.Fatal("script exhausted after pool drained")
	}
	rtx, err := coin.Decode(op)
	if err != nil {
		t.Fatalf("decode re-mint: %v", err)
	}
	if rtx.Type != coin.TxMint {
		t.Fatalf("after dry pool expected mint, got type %d", rtx.Type)
	}
}

func TestCoinScriptDeterministicAcrossRuns(t *testing.T) {
	a := NewCoinScript("wl-det", 7)
	b := NewCoinScript("wl-det", 7)
	opA, _ := a.NextOp(nil)
	opB, _ := b.NextOp(nil)
	if string(opA) != string(opB) {
		t.Fatal("same (label, id) must generate identical transactions")
	}
	c := NewCoinScript("wl-det", 8)
	opC, _ := c.NextOp(nil)
	if string(opA) == string(opC) {
		t.Fatal("different clients must generate distinct transactions")
	}
}

func TestMintOnlyScript(t *testing.T) {
	s := NewMintOnlyScript("wl-mint", 3)
	seen := map[string]bool{}
	for i := 0; i < 5; i++ {
		op, ok := s.NextOp(nil)
		if !ok {
			t.Fatal("mint-only script exhausted")
		}
		tx, err := coin.Decode(op)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if tx.Type != coin.TxMint {
			t.Fatalf("op %d: type %d", i, tx.Type)
		}
		if seen[string(op)] {
			t.Fatalf("op %d repeated (nonce not advancing)", i)
		}
		seen[string(op)] = true
	}
}

func TestMinterKeysMatchScriptKeys(t *testing.T) {
	keys := MinterKeys("wl-keys", 3)
	for i := 0; i < 3; i++ {
		s := NewCoinScript("wl-keys", int64(i))
		if !s.Key().Public().Equal(crypto.PublicKey(keys[i])) {
			t.Fatalf("minter key %d does not match script identity", i)
		}
	}
}

func TestCoinScriptSpendOnlyExhausts(t *testing.T) {
	s := NewCoinScript("wl-spendonly", 1, WithMintBatch(3), WithSpendOnly())
	svc := coin.NewService(MinterKeys("wl-spendonly", 2))

	op, ok := s.NextOp(nil)
	if !ok {
		t.Fatal("script exhausted before the seed mint")
	}
	tx, err := coin.Decode(op)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	res := svc.State().Apply(&tx)
	if res[0] != coin.ResultOK {
		t.Fatalf("mint result: %d", res[0])
	}

	spends := 0
	for {
		op, ok = s.NextOp(res)
		if !ok {
			break
		}
		res = nil
		stx, err := coin.Decode(op)
		if err != nil {
			t.Fatalf("decode spend %d: %v", spends, err)
		}
		if stx.Type != coin.TxSpend {
			t.Fatalf("spend-only script emitted a re-mint at op %d", spends)
		}
		spends++
		if spends > 3 {
			t.Fatal("more spends than minted coins")
		}
	}
	if spends != 3 {
		t.Fatalf("spends: %d, want 3", spends)
	}
	// Exhaustion is sticky.
	if _, ok := s.NextOp(nil); ok {
		t.Fatal("exhausted script must stay exhausted")
	}
}

func TestRecipientSkewDeterministicAndShared(t *testing.T) {
	recipientsOf := func(s *CoinScript, svc *coin.Service, n int) []string {
		t.Helper()
		op, ok := s.NextOp(nil)
		if !ok {
			t.Fatal("exhausted at mint")
		}
		tx, err := coin.Decode(op)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		res := svc.State().Apply(&tx)
		if res[0] != coin.ResultOK {
			t.Fatalf("mint: %d", res[0])
		}
		var out []string
		for i := 0; i < n; i++ {
			op, ok = s.NextOp(res)
			if !ok {
				t.Fatalf("exhausted at spend %d", i)
			}
			res = nil
			stx, err := coin.Decode(op)
			if err != nil {
				t.Fatalf("decode spend %d: %v", i, err)
			}
			out = append(out, string(stx.Outputs[0].Owner))
		}
		return out
	}

	// Identical (label, client, universe, skew) ⇒ identical recipient draws.
	mk := func() (*CoinScript, *coin.Service) {
		return NewCoinScript("wl-skew", 2, WithMintBatch(8), WithRecipientSkew("wl-skew", 2, 16, 1.2)),
			coin.NewService(MinterKeys("wl-skew", 3))
	}
	sa, va := mk()
	sb, vb := mk()
	a := recipientsOf(sa, va, 8)
	b := recipientsOf(sb, vb, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("skewed draws differ at %d across identical scripts", i)
		}
	}

	// Different clients share the recipient universe (that is the point:
	// cross-client write-write conflicts on the hot accounts).
	s2 := NewCoinScript("wl-skew", 3, WithMintBatch(8), WithRecipientSkew("wl-skew", 3, 1, 0))
	v2 := coin.NewService(MinterKeys("wl-skew", 4))
	s3 := NewCoinScript("wl-skew", 4, WithMintBatch(8), WithRecipientSkew("wl-skew", 4, 1, 0))
	v3 := coin.NewService(MinterKeys("wl-skew", 5))
	r2 := recipientsOf(s2, v2, 1)
	r3 := recipientsOf(s3, v3, 1)
	if r2[0] != r3[0] {
		t.Fatal("universe of size 1 must send every client to the same hot account")
	}

	// Skewed draws concentrate: with skew 1.5 over 64 addresses the top
	// recipient must take a clearly super-uniform share.
	sk := NewCoinScript("wl-skew", 5, WithMintBatch(64), WithRecipientSkew("wl-skew", 5, 64, 1.5))
	vk := coin.NewService(MinterKeys("wl-skew", 6))
	counts := map[string]int{}
	for _, r := range recipientsOf(sk, vk, 64) {
		counts[r]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 8 { // uniform expectation is 1 per address
		t.Fatalf("skew 1.5 concentration too weak: top recipient got %d of 64", max)
	}
}
