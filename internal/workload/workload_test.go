package workload

import (
	"testing"

	"smartchain/internal/coin"
	"smartchain/internal/crypto"
)

func TestCoinScriptMintThenSpend(t *testing.T) {
	s := NewCoinScript("wl-test", 1, WithMintBatch(4))
	svc := coin.NewService(MinterKeys("wl-test", 2))

	// First op is a MINT of 4 coins.
	op, ok := s.NextOp(nil)
	if !ok {
		t.Fatal("script exhausted immediately")
	}
	tx, err := coin.Decode(op)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if tx.Type != coin.TxMint || len(tx.Outputs) != 4 {
		t.Fatalf("first op: type=%d outputs=%d", tx.Type, len(tx.Outputs))
	}
	res := svc.State().Apply(&tx)
	if res[0] != coin.ResultOK {
		t.Fatalf("mint result: %d", res[0])
	}

	// Next ops are single-input single-output SPENDs consuming the pool.
	for i := 0; i < 4; i++ {
		op, ok = s.NextOp(res)
		if !ok {
			t.Fatalf("script exhausted at spend %d", i)
		}
		res = nil // results only matter after mints
		stx, err := coin.Decode(op)
		if err != nil {
			t.Fatalf("decode spend %d: %v", i, err)
		}
		if stx.Type != coin.TxSpend || len(stx.Inputs) != 1 || len(stx.Outputs) != 1 {
			t.Fatalf("spend %d shape: in=%d out=%d", i, len(stx.Inputs), len(stx.Outputs))
		}
		applied := svc.State().Apply(&stx)
		if applied[0] != coin.ResultOK {
			t.Fatalf("spend %d result: %d", i, applied[0])
		}
	}

	// Pool dry: the script re-mints.
	op, ok = s.NextOp(nil)
	if !ok {
		t.Fatal("script exhausted after pool drained")
	}
	rtx, err := coin.Decode(op)
	if err != nil {
		t.Fatalf("decode re-mint: %v", err)
	}
	if rtx.Type != coin.TxMint {
		t.Fatalf("after dry pool expected mint, got type %d", rtx.Type)
	}
}

func TestCoinScriptDeterministicAcrossRuns(t *testing.T) {
	a := NewCoinScript("wl-det", 7)
	b := NewCoinScript("wl-det", 7)
	opA, _ := a.NextOp(nil)
	opB, _ := b.NextOp(nil)
	if string(opA) != string(opB) {
		t.Fatal("same (label, id) must generate identical transactions")
	}
	c := NewCoinScript("wl-det", 8)
	opC, _ := c.NextOp(nil)
	if string(opA) == string(opC) {
		t.Fatal("different clients must generate distinct transactions")
	}
}

func TestMintOnlyScript(t *testing.T) {
	s := NewMintOnlyScript("wl-mint", 3)
	seen := map[string]bool{}
	for i := 0; i < 5; i++ {
		op, ok := s.NextOp(nil)
		if !ok {
			t.Fatal("mint-only script exhausted")
		}
		tx, err := coin.Decode(op)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if tx.Type != coin.TxMint {
			t.Fatalf("op %d: type %d", i, tx.Type)
		}
		if seen[string(op)] {
			t.Fatalf("op %d repeated (nonce not advancing)", i)
		}
		seen[string(op)] = true
	}
}

func TestMinterKeysMatchScriptKeys(t *testing.T) {
	keys := MinterKeys("wl-keys", 3)
	for i := 0; i < 3; i++ {
		s := NewCoinScript("wl-keys", int64(i))
		if !s.Key().Public().Equal(crypto.PublicKey(keys[i])) {
			t.Fatalf("minter key %d does not match script identity", i)
		}
	}
}
