// benchrunner regenerates every table and figure of the paper's evaluation
// (§VI) and prints the same rows/series the paper reports.
//
// Usage:
//
//	benchrunner -exp table1            # Table I
//	benchrunner -exp fig6              # Figure 6 (n = 4, 7, 10)
//	benchrunner -exp table2            # Table II
//	benchrunner -exp fig7              # Figure 7 timeline
//	benchrunner -exp fig8              # Figure 8 replica-update times
//	benchrunner -exp ablate            # pipeline ablation
//	benchrunner -exp window            # ordering window W=1 vs W=8
//	benchrunner -exp openloop          # closed-loop vs async vs unordered reads
//	benchrunner -exp reads             # quorum-fresh vs read-your-writes vs ordered reads
//	benchrunner -exp execpar           # conflict-aware parallel execution vs sequential replay
//	benchrunner -exp failover          # leader-kill recovery: regency-wide vs sequential drain
//	benchrunner -exp catchup           # multi-peer pipelined state transfer vs legacy single donor
//	benchrunner -exp chaos             # seeded fault schedule under load, invariant-gated
//	benchrunner -exp wire              # memnet vs real-TCP loopback, per-sig vs batched verification
//	benchrunner -exp verify            # end-to-end chain verification
//	benchrunner -exp all
//
// -paper scales clients and measurement windows up toward the paper's
// methodology (2400 clients; slower but sharper numbers). -windows sets
// the ordering-window sweep the Fig. 6 rows cover; -inflight sets the
// per-client pipeline depth of the open-loop experiment. -json writes
// every measured row to a JSON file (the CI workflow uploads it as a
// per-commit artifact, so the perf trajectory is preserved).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"smartchain/internal/harness"
	"smartchain/internal/storage"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: table1|fig6|table2|fig7|fig8|ablate|window|openloop|reads|execpar|failover|catchup|chaos|wire|verify|all")
		clients    = flag.Int("clients", 240, "closed-loop clients")
		measure    = flag.Duration("measure", 2*time.Second, "measured window per configuration")
		warmup     = flag.Duration("warmup", 500*time.Millisecond, "warmup before measuring")
		paper      = flag.Bool("paper", false, "paper-scale run (2400 clients, 10s windows)")
		ssd        = flag.Bool("ssd", false, "use the SSD device profile instead of the paper's HDD")
		windows    = flag.String("windows", "1,8", "comma-separated ordering windows W for the fig6 sweep")
		inflight   = flag.Int("inflight", 16, "per-client in-flight cap for -exp openloop")
		catchupN   = flag.Int64("catchup-blocks", 10_000, "fabricated chain length for -exp catchup (CI smoke uses 2000)")
		chaosSeed  = flag.Int64("chaos-seed", 1, "schedule seed for -exp chaos (same seed = same fault timeline)")
		chaosDur   = flag.Duration("chaos-duration", 15*time.Second, "fault window for -exp chaos")
		chaosChurn = flag.Bool("chaos-churn", false, "interleave membership churn into the -exp chaos schedule")
		netKind    = flag.String("net", "tcp", "transports for -exp wire: mem (memnet only) or tcp (memnet baseline + TCP sweep)")
		wireLat    = flag.Duration("wire-latency", 5*time.Millisecond, "injected per-link latency for the WAN-shaped wire points")
		jsonPath   = flag.String("json", "", "write all measured rows to this JSON file")
	)
	flag.Parse()

	depths, err := parseWindows(*windows)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	if *inflight < 1 {
		fmt.Fprintln(os.Stderr, "benchrunner: -inflight must be ≥ 1 (1 = async machinery at closed-loop depth)")
		os.Exit(1)
	}
	opts := harness.ExpOptions{
		Clients: *clients,
		Warmup:  *warmup,
		Measure: *measure,
		Depths:  depths,
	}
	if *paper {
		opts.Clients = 2400
		opts.Measure = 10 * time.Second
		opts.Warmup = 2 * time.Second
	}
	if *ssd {
		opts.Disk = storage.SSDProfile
	}

	chaosOpts := harness.ChaosOptions{Seed: *chaosSeed, Duration: *chaosDur, Churn: *chaosChurn}

	var wireNets []string
	switch *netKind {
	case "mem":
		wireNets = []string{"mem"}
	case "tcp":
		// The TCP regression gate needs the memnet baseline for its
		// goodput ratio, so -net tcp measures both.
		wireNets = []string{"mem", "tcp"}
	default:
		fmt.Fprintf(os.Stderr, "benchrunner: bad -net %q (mem|tcp)\n", *netKind)
		os.Exit(1)
	}

	report := make(map[string]any)
	runErr := run(*exp, opts, *paper, *inflight, *catchupN, chaosOpts, wireNets, *wireLat, report)
	if *jsonPath != "" && len(report) > 0 {
		// Persist whatever completed even when a later experiment failed:
		// the CI artifact should carry the partial trajectory too.
		if err := writeReport(*jsonPath, report); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner: write json:", err)
			if runErr == nil {
				os.Exit(1)
			}
		}
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", runErr)
		os.Exit(1)
	}
}

// writeReport dumps the collected experiment rows as indented JSON.
func writeReport(path string, report map[string]any) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// parseWindows parses the -windows flag ("1,8" → []int{1, 8}).
func parseWindows(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		w, err := strconv.Atoi(part)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad -windows entry %q", part)
		}
		out = append(out, w)
	}
	return out, nil
}

func run(exp string, opts harness.ExpOptions, paper bool, inflight int, catchupBlocks int64, chaosOpts harness.ChaosOptions, wireNets []string, wireLat time.Duration, report map[string]any) error {
	all := exp == "all"
	ran := false
	if all || exp == "table1" {
		ran = true
		fmt.Println("== Table I: SMaRtCoin throughput by verification and storage strategy ==")
		rows, err := harness.TableI(opts)
		if err != nil {
			return err
		}
		report["table1"] = rows
		printRows(rows)
	}
	if all || exp == "fig6" {
		ran = true
		fmt.Println("== Figure 6: throughput by consortium size and persistence guarantee ==")
		rows, err := harness.Fig6([]int{4, 7, 10}, opts)
		if err != nil {
			return err
		}
		report["fig6"] = rows
		printRows(rows)
	}
	if all || exp == "table2" {
		ran = true
		fmt.Println("== Table II: SMARTCHAIN vs Tendermint vs Fabric ==")
		rows, err := harness.TableII(opts)
		if err != nil {
			return err
		}
		report["table2"] = rows
		printRows(rows)
	}
	if all || exp == "fig7" {
		ran = true
		fmt.Println("== Figure 7: throughput evolution across events ==")
		f7 := harness.Fig7Options{Clients: opts.Clients / 2}
		if paper {
			f7.RunFor = 120 * time.Second
			f7.PrepopUTXO = 1_000_000
		}
		points, err := harness.Fig7(f7)
		if err != nil {
			return err
		}
		report["fig7"] = points
		for _, p := range points {
			marker := ""
			if p.Event != "" {
				marker = "   <-- " + p.Event
			}
			fmt.Printf("  t=%6.1fs  %8.0f tx/s  height=%d%s\n",
				p.T.Seconds(), p.TxPerSec, p.LiveHeight, marker)
		}
	}
	if all || exp == "fig8" {
		ran = true
		fmt.Println("== Figure 8: time to update a replica ==")
		blockCounts := []int{1000, 2000, 4000, 6000, 8000, 10000}
		txPerBlock := 64
		if paper {
			txPerBlock = 512
		}
		for _, ckpt := range []int{0, 500, 1000, 2000} {
			name := "no-ckpt"
			if ckpt > 0 {
				name = fmt.Sprintf("%d-ckpt", ckpt)
			}
			fmt.Printf("  %s:\n", name)
			for _, blocks := range blockCounts {
				d, err := harness.Fig8Point(blocks, ckpt, txPerBlock)
				if err != nil {
					return err
				}
				fmt.Printf("    %6d blocks  %8.2fs\n", blocks, d.Seconds())
			}
		}
	}
	if all || exp == "ablate" {
		ran = true
		fmt.Println("== Ablation: Algorithm 1 pipeline decoupling ==")
		rows, err := harness.AblationPipeline(opts)
		if err != nil {
			return err
		}
		report["ablate"] = rows
		printRows(rows)
	}
	if all || exp == "window" {
		ran = true
		fmt.Println("== Ordering window: sequential (W=1) vs pipelined (W=8) consensus ==")
		rows, err := harness.PipelineWindow([]int{1, 8}, 5*time.Millisecond, opts)
		if err != nil {
			return err
		}
		report["window"] = rows
		printRows(rows)
		if len(rows) == 2 && rows[0].Throughput > 0 {
			fmt.Printf("  speedup: %.2fx\n", rows[1].Throughput/rows[0].Throughput)
		}
	}
	if all || exp == "openloop" {
		ran = true
		fmt.Println("== Invocation API: closed-loop vs async open-loop vs unordered reads (W=8) ==")
		rows, err := harness.OpenLoop(inflight, 5*time.Millisecond, opts)
		if err != nil {
			return err
		}
		report["openloop"] = rows
		printRows(rows)
		if len(rows) >= 2 && rows[0].Throughput > 0 {
			fmt.Printf("  async speedup over closed-loop: %.2fx\n", rows[1].Throughput/rows[0].Throughput)
		}
	}
	if all || exp == "reads" {
		ran = true
		fmt.Println("== Read consistency: quorum-fresh vs read-your-writes vs ordered reads (W=8) ==")
		points, err := harness.Reads(5*time.Millisecond, opts)
		report["reads"] = points
		if err != nil {
			return err
		}
		for _, p := range points {
			fmt.Printf("  %s\n", p)
		}
		if len(points) == 3 && points[2].Throughput > 0 {
			fmt.Printf("  read-your-writes keeps %.0f%% of quorum-fresh throughput at 0 instances; ordered reads consumed %d\n",
				100*points[1].Throughput/points[0].Throughput, points[2].Instances)
		}
	}
	if all || exp == "execpar" {
		ran = true
		fmt.Println("== Parallel execution: conflict-aware executor vs sequential replay (W=8 workers) ==")
		points, err := harness.ExecPar(8, opts)
		report["execpar"] = points
		if err != nil {
			return err
		}
		for _, p := range points {
			fmt.Printf("  %s\n", p)
		}
		for _, p := range points {
			// Correctness gate: bit-identical results and post-state at every
			// contention level, on every host.
			if p.Diverged {
				return fmt.Errorf("execpar: %s diverged between sequential and parallel execution", p.Contention)
			}
			// Perf gate: at low contention the parallel path must not lose to
			// the sequential one — but only multi-core hosts can show a
			// speedup, so a single-core runner only gets the divergence gate.
			if p.Contention == "uniform" && p.NumCPU >= 4 && p.Speedup < 1.0 {
				return fmt.Errorf("execpar: low-contention speedup %.2fx < 1.0x on a %d-core host",
					p.Speedup, p.NumCPU)
			}
		}
	}
	if all || exp == "failover" {
		ran = true
		fmt.Println("== Failover: time-to-first-commit after leader kill (regency-wide vs sequential drain) ==")
		points, err := harness.Failover(opts)
		report["failover"] = points
		if err != nil {
			return err
		}
		for _, p := range points {
			fmt.Printf("  %s\n", p)
		}
		// Pair up the deepest window for the headline ratio.
		byKey := make(map[string]harness.FailoverPoint, len(points))
		maxW := 0
		for _, p := range points {
			byKey[fmt.Sprintf("%v/%d", p.Sequential, p.Depth)] = p
			if p.Depth > maxW {
				maxW = p.Depth
			}
		}
		wide, okW := byKey[fmt.Sprintf("false/%d", maxW)]
		seq, okS := byKey[fmt.Sprintf("true/%d", maxW)]
		if okW && okS && wide.RecoveryMS > 0 {
			fmt.Printf("  W=%d recovery speedup over sequential drain: %.2fx\n",
				maxW, float64(seq.RecoveryMS)/float64(wide.RecoveryMS))
		}
	}
	if all || exp == "catchup" {
		ran = true
		fmt.Printf("== Catch-up: multi-peer pipelined state transfer vs legacy single donor (%d-block chain) ==\n", catchupBlocks)
		points, err := harness.Catchup(catchupBlocks)
		report["catchup"] = points
		if err != nil {
			return err
		}
		for _, p := range points {
			fmt.Printf("  %s\n", p)
		}
		var multi, legacy *harness.CatchupPoint
		for i := range points {
			p := &points[i]
			// Correctness gates, every scenario: the synced replica must be
			// bit-identical to the donors, and a corrupt chunk must never be
			// accepted silently — its donor gets banned.
			if p.Diverged {
				return fmt.Errorf("catchup: %s diverged from the donor state", p.Label)
			}
			if p.Fault == "corrupt-chunk" && p.Banned < 1 {
				return fmt.Errorf("catchup: %s accepted corrupt chunks without banning the donor", p.Label)
			}
			switch {
			case !p.Legacy && p.Fault == "":
				multi = p
			case p.Legacy:
				legacy = p
			}
		}
		if multi != nil && legacy != nil && multi.SyncMS > 0 {
			speedup := float64(legacy.SyncMS) / float64(multi.SyncMS)
			fmt.Printf("  multi-peer speedup over single donor: %.2fx (target ≥2x on multi-core)\n", speedup)
			// Perf gate: with four donors the pool must not lose to one —
			// but only multi-core hosts overlap fetch with verification, so
			// a single-core runner only gets the correctness gates.
			if multi.NumCPU >= 4 && speedup < 1.0 {
				return fmt.Errorf("catchup: multi-peer sync (%d ms) slower than legacy single donor (%d ms) on a %d-core host",
					multi.SyncMS, legacy.SyncMS, multi.NumCPU)
			}
		}
	}
	if all || exp == "chaos" {
		ran = true
		fmt.Printf("== Chaos: seeded fault schedule under load (seed=%d, %s window) ==\n",
			chaosOpts.Seed, chaosOpts.Duration)
		rep, err := harness.Chaos(chaosOpts)
		report["chaos"] = rep
		if err != nil {
			return err
		}
		// Goodput-under-adversity timeline with fault-event markers.
		evIdx := 0
		for _, s := range rep.Timeline {
			marker := ""
			for evIdx < len(rep.Events) && rep.Events[evIdx].T <= s.T {
				if marker != "" {
					marker += "; "
				}
				marker += fmt.Sprintf("%s %s", rep.Events[evIdx].Kind, rep.Events[evIdx].Name)
				evIdx++
			}
			if marker != "" {
				marker = "   <-- " + marker
			}
			fmt.Printf("  t=%6.2fs  %8.0f tx/s%s\n", s.T.Seconds(), s.TxPerSec, marker)
		}
		fmt.Printf("  confirmed=%d errors=%d chain-txs=%d height=%d epoch-changes=%d equivocations=%d survivors=%d\n",
			rep.Confirmed, rep.Errors, rep.ChainTxs, rep.FinalHeight, rep.EpochChanges, rep.Equivocations, rep.Survivors)
		// Invariant gate: any violation hard-fails the run (CI catches it).
		if len(rep.Violations) > 0 {
			for _, v := range rep.Violations {
				fmt.Printf("  VIOLATION: %s\n", v)
			}
			return fmt.Errorf("chaos: %d invariant violation(s) on seed %d", len(rep.Violations), rep.Seed)
		}
		fmt.Println("  invariants: all green")
	}
	if all || exp == "wire" {
		ran = true
		fmt.Printf("== Wire: memnet vs real TCP (W=8), per-signature vs batched verification (nets=%v) ==\n", wireNets)
		points, cryptoBench, err := harness.Wire(wireNets, wireLat, opts)
		report["wire"] = map[string]any{"points": points, "crypto": cryptoBench}
		if err != nil {
			return err
		}
		for _, p := range points {
			fmt.Printf("  %s\n", p)
		}
		if cryptoBench != nil {
			fmt.Printf("  crypto: %s\n", cryptoBench)
		}
		// Correctness gates, every host. A TCP point on an idle loopback
		// must carry every frame: any drop, failed dial, authentication
		// failure, or unconverged replica is a transport bug, not noise.
		byLabel := make(map[string]harness.WirePoint, len(points))
		for _, p := range points {
			byLabel[p.Net+"/"+p.Verify+"/"+fmt.Sprint(p.LatencyMS)] = p
			if !p.Converged {
				return fmt.Errorf("wire: %s did not converge to a common height (decided-instance loss)", p.Label)
			}
			if p.Net != "tcp" {
				continue
			}
			if p.Drops > 0 {
				return fmt.Errorf("wire: %s dropped %d frames (queue-full=%d conn-down=%d) on loopback",
					p.Label, p.Drops, p.DropsQueueFull, p.DropsConnDown)
			}
			if p.DialFailures > 0 || p.AuthFailures > 0 || p.ProtocolViolations > 0 {
				return fmt.Errorf("wire: %s transport errors: dialfail=%d auth=%d proto=%d",
					p.Label, p.DialFailures, p.AuthFailures, p.ProtocolViolations)
			}
			if p.Errors > 0 {
				return fmt.Errorf("wire: %s had %d failed invocations", p.Label, p.Errors)
			}
		}
		// Batched verification must not pass a corrupted signature or drop
		// an honest one, anywhere.
		if cryptoBench != nil && !cryptoBench.FallbackOK {
			return fmt.Errorf("wire: batch verification fallback mis-attributed a bad signature")
		}
		// Perf gates, multi-core hosts only (a single-core runner cannot
		// show parallel-verification wins, and its TCP goodput is dominated
		// by the cores the kernel steals from consensus).
		if cryptoBench != nil && cryptoBench.NumCPU >= 4 && cryptoBench.Speedup < 1.1 {
			return fmt.Errorf("wire: batched verification speedup %.2fx < 1.1x over per-signature on a %d-core host",
				cryptoBench.Speedup, cryptoBench.NumCPU)
		}
		memPt, okMem := byLabel["mem/batched/0"]
		tcpPt, okTCP := byLabel["tcp/batched/0"]
		if okMem && okTCP && memPt.Throughput > 0 {
			ratio := tcpPt.Throughput / memPt.Throughput
			fmt.Printf("  tcp/memnet goodput ratio at W=8: %.2f\n", ratio)
			if tcpPt.NumCPU >= 4 && ratio < 0.5 {
				return fmt.Errorf("wire: tcpnet keeps only %.0f%% of memnet goodput at W=8 (gate: ≥50%%) on a %d-core host",
					100*ratio, tcpPt.NumCPU)
			}
		}
	}
	if all || exp == "verify" {
		ran = true
		fmt.Println("== End-to-end: strong-variant chain verification ==")
		sum, err := harness.VerifyChainAfterLoad(opts)
		if err != nil {
			return err
		}
		fmt.Printf("  verified chain: height=%d blocks=%d txs=%d certified=%d view-changes=%d\n",
			sum.Height, sum.Blocks, sum.Transactions, sum.Certified, sum.ViewChanges)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

func printRows(rows []harness.Row) {
	for _, r := range rows {
		fmt.Printf("  %s\n", r)
	}
}
