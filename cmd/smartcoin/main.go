// smartcoin is the client CLI for a smartchaind deployment: mint coins,
// spend them, and check balances against the replicated UTXO state.
//
//	smartcoin -peers 0=localhost:7000,...,3=localhost:7003 mint 100 50
//	smartcoin -peers ... balance
//	smartcoin -peers ... spend <coin-id-hex> <value>
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strconv"

	"smartchain/internal/client"
	"smartchain/internal/coin"
	"smartchain/internal/core"
	"smartchain/internal/crypto"
	"smartchain/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "smartcoin:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		peersArg = flag.String("peers", "0=localhost:7000,1=localhost:7001,2=localhost:7002,3=localhost:7003", "replica addresses")
		chainID  = flag.String("chain", "smartchain-demo", "chain identifier (genesis seed)")
		minterID = flag.Int64("identity", 0, "seeded minter identity index")
		secret   = flag.String("secret", "smartchain-demo-secret", "shared link-authentication secret")
		clientID = flag.Int("client", 1, "client number (distinct per concurrent CLI)")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		return fmt.Errorf("usage: smartcoin [flags] mint <values...> | spend <coin-hex> <value> | nonce is automatic")
	}

	peers := make(map[int32]string)
	members := []int32{}
	for _, pair := range splitPairs(*peersArg) {
		peers[pair.id] = pair.addr
		members = append(members, pair.id)
	}

	id := transport.ClientIDBase + int32(*clientID)
	net, err := transport.NewTCPNetwork(id, "127.0.0.1:0", []byte(*secret), peers)
	if err != nil {
		return err
	}
	defer net.Close()

	key := crypto.SeededKeyPair(*chainID+"/minter", *minterID)
	proxy := client.New(net, key, members)
	defer proxy.Close()
	ctx := context.Background()

	switch args[0] {
	case "mint":
		if len(args) < 2 {
			return fmt.Errorf("mint needs at least one value")
		}
		values := make([]uint64, 0, len(args)-1)
		for _, a := range args[1:] {
			v, err := strconv.ParseUint(a, 10, 64)
			if err != nil {
				return fmt.Errorf("bad value %q: %v", a, err)
			}
			values = append(values, v)
		}
		tx, err := coin.NewMint(key, nonce(), values...)
		if err != nil {
			return err
		}
		res, err := proxy.Invoke(ctx, core.WrapAppOp(tx.Encode()))
		if err != nil {
			return err
		}
		code, coins, err := coin.ParseResult(res)
		if err != nil || code != coin.ResultOK {
			return fmt.Errorf("mint rejected: code=%d err=%v", code, err)
		}
		for _, c := range coins {
			fmt.Printf("minted coin %s\n", c)
		}
	case "spend":
		if len(args) != 3 {
			return fmt.Errorf("spend <coin-hex> <value>")
		}
		raw, err := hex.DecodeString(args[1])
		if err != nil {
			return fmt.Errorf("bad coin id: %v", err)
		}
		value, err := strconv.ParseUint(args[2], 10, 64)
		if err != nil {
			return fmt.Errorf("bad value: %v", err)
		}
		tx, err := coin.NewSpend(key, nonce(), []coin.CoinID{crypto.HashFromBytes(raw)},
			[]coin.Output{{Owner: key.Public(), Value: value}})
		if err != nil {
			return err
		}
		res, err := proxy.Invoke(ctx, core.WrapAppOp(tx.Encode()))
		if err != nil {
			return err
		}
		code, coins, err := coin.ParseResult(res)
		if err != nil || code != coin.ResultOK {
			return fmt.Errorf("spend rejected: code=%d err=%v", code, err)
		}
		for _, c := range coins {
			fmt.Printf("new coin %s\n", c)
		}
	case "balance":
		// Consensus-free read: answered directly from replica state, made
		// trustworthy by the matching-reply quorum.
		res, err := proxy.InvokeUnordered(ctx, core.WrapAppOp(coin.EncodeBalanceQuery(key.Public())))
		if err != nil {
			return err
		}
		balance, err := coin.ParseUint64Result(res)
		if err != nil {
			return err
		}
		fmt.Printf("balance of identity %d: %d\n", *minterID, balance)
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
	return nil
}

// nonce derives a fresh transaction nonce from the wall clock; good enough
// for a CLI (replays within the same nanosecond are not a CLI use case).
func nonce() uint64 {
	var b [8]byte
	f, err := os.Open("/dev/urandom")
	if err == nil {
		_, _ = f.Read(b[:])
		f.Close()
	}
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

type peerPair struct {
	id   int32
	addr string
}

func splitPairs(arg string) []peerPair {
	var out []peerPair
	start := 0
	for i := 0; i <= len(arg); i++ {
		if i == len(arg) || arg[i] == ',' {
			pair := arg[start:i]
			start = i + 1
			for j := 0; j < len(pair); j++ {
				if pair[j] == '=' {
					if id, err := strconv.Atoi(pair[:j]); err == nil {
						out = append(out, peerPair{id: int32(id), addr: pair[j+1:]})
					}
					break
				}
			}
		}
	}
	return out
}
