// smartchaind runs one SMARTCHAIN replica over TCP with file-backed stable
// storage. A deployment is described by a genesis seed (chain id + replica
// count) shared by all replicas; identities are derived deterministically
// from it, which keeps this demo daemon self-contained (a production
// deployment would provision keys out of band).
//
// Example 4-replica deployment on one machine:
//
//	smartchaind -id 0 -listen :7000 -peers 0=localhost:7000,1=localhost:7001,2=localhost:7002,3=localhost:7003 -data /tmp/sc0 &
//	smartchaind -id 1 -listen :7001 -peers ... -data /tmp/sc1 &
//	smartchaind -id 2 -listen :7002 -peers ... -data /tmp/sc2 &
//	smartchaind -id 3 -listen :7003 -peers ... -data /tmp/sc3 &
//
// Then drive it with cmd/smartcoin.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"smartchain/internal/blockchain"
	"smartchain/internal/coin"
	"smartchain/internal/core"
	"smartchain/internal/crypto"
	"smartchain/internal/smr"
	"smartchain/internal/storage"
	"smartchain/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "smartchaind:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id       = flag.Int("id", 0, "replica ID")
		listen   = flag.String("listen", ":7000", "listen address")
		peersArg = flag.String("peers", "", "comma-separated id=host:port pairs for every replica")
		dataDir  = flag.String("data", "./smartchain-data", "data directory (chain log, snapshots, key file)")
		chainID  = flag.String("chain", "smartchain-demo", "chain identifier (genesis seed)")
		n        = flag.Int("n", 4, "number of genesis replicas")
		strong   = flag.Bool("strong", true, "strong (0-Persistence) variant")
		secret   = flag.String("secret", "smartchain-demo-secret", "shared link-authentication secret")
		minters  = flag.Int("minters", 8, "number of seeded minter identities authorized in genesis")
	)
	flag.Parse()

	peers, err := parsePeers(*peersArg)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*dataDir, 0o755); err != nil {
		return err
	}

	genesis := demoGenesis(*chainID, *n, *minters)
	net, err := transport.NewTCPNetwork(int32(*id), *listen, []byte(*secret), peers)
	if err != nil {
		return err
	}
	log, err := storage.OpenFileLog(filepath.Join(*dataDir, "chain.log"))
	if err != nil {
		return err
	}

	persistence := core.PersistenceWeak
	if *strong {
		persistence = core.PersistenceStrong
	}
	minterKeys := demoMinters(*chainID, *minters)
	node, err := core.NewNode(core.Config{
		Self:                int32(*id),
		Genesis:             genesis,
		Permanent:           crypto.SeededKeyPair(*chainID+"/perm", int64(*id)),
		InitialConsensusKey: crypto.SeededKeyPair(*chainID+"/cons0", int64(*id)),
		Transport:           net,
		Log:                 log,
		Snapshots:           storage.NewFileSnapshotStore(filepath.Join(*dataDir, "snapshot")),
		KeyFile:             storage.NewFileSnapshotStore(filepath.Join(*dataDir, "consensus.key")),
		App:                 coin.NewService(minterKeys),
		Persistence:         persistence,
		Storage:             smr.StorageSync,
		Verify:              smr.VerifyParallel,
		Pipeline:            true,
		ConsensusTimeout:    time.Second,
	})
	if err != nil {
		return err
	}
	if err := node.Start(); err != nil {
		return err
	}
	fmt.Printf("smartchaind: replica %d up on %s (chain %q, %s variant)\n",
		*id, net.Addr(), *chainID, persistence)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("smartchaind: shutting down")
	node.Stop()
	_ = net.Close()
	return log.Close()
}

// demoGenesis derives the shared genesis content from the chain seed.
func demoGenesis(chainID string, n, minters int) blockchain.Genesis {
	replicas := make([]blockchain.ReplicaInfo, 0, n)
	for i := 0; i < n; i++ {
		replicas = append(replicas, blockchain.ReplicaInfo{
			ID:           int32(i),
			PermanentPub: crypto.SeededKeyPair(chainID+"/perm", int64(i)).Public(),
			ConsensusPub: crypto.SeededKeyPair(chainID+"/cons0", int64(i)).Public(),
		})
	}
	return blockchain.Genesis{
		ChainID:          chainID,
		Replicas:         replicas,
		Minters:          demoMinters(chainID, minters),
		CheckpointPeriod: 1000,
		MaxBatchSize:     512,
	}
}

func demoMinters(chainID string, n int) []crypto.PublicKey {
	out := make([]crypto.PublicKey, n)
	for i := range out {
		out[i] = crypto.SeededKeyPair(chainID+"/minter", int64(i)).Public()
	}
	return out
}

func parsePeers(arg string) (map[int32]string, error) {
	peers := make(map[int32]string)
	if arg == "" {
		return peers, nil
	}
	for _, pair := range strings.Split(arg, ",") {
		id, addr, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("bad peer %q (want id=host:port)", pair)
		}
		pid, err := strconv.Atoi(strings.TrimSpace(id))
		if err != nil {
			return nil, fmt.Errorf("bad peer id %q: %v", id, err)
		}
		peers[int32(pid)] = strings.TrimSpace(addr)
	}
	return peers, nil
}
